"""Versioned binary snapshots of finalized documents (store format v2).

A snapshot is the flat-column :class:`~repro.xml.index.NodeIndex`
representation made durable: the per-node ``parent_pre`` / ``size`` /
``post`` / ``depth`` columns as little-endian signed 8-byte ints, one
kind-code byte per node, and the two string columns (names, values) as
length tables plus UTF-8 blobs. Decoding therefore skips both the XML
parse *and* the index build — the rebuilt :class:`~repro.xml.document.
Document` arrives with its index pre-seeded in the process cache
(:func:`~repro.xml.index.adopt_node_index`, counted as
``index_adoptions``). This is what :class:`~repro.xml.store.
DocumentStore` persists per document in format v2 and what
:class:`~repro.service.scheduler.ProcessScheduler` ships to workers
instead of serialized markup.

Layout (all integers little-endian)::

    magic      8 bytes   b"RXSNAP02"
    version    u32       2
    n          u64       node count (>= 1)
    id_len     u32       byte length of the UTF-8 id_attribute
    id_attr    id_len bytes
    kinds      n bytes   one code per node: D E A T C P
    parent_pre n × i64
    size       n × i64
    post       n × i64
    depth      n × i64
    names      n × i64 lengths (-1 = None) + u64 blob_len + blob
    values     n × i64 lengths (-1 = None) + u64 blob_len + blob
    crc        u32       zlib.crc32 over every preceding byte

Corruption is caught twice: the CRC rejects bit rot, and an ``O(|D|)``
structural validation (parent ordering, attribute contiguity, exact
``size``/``depth`` recomputation, and the closed-form post identity
``post = pre - depth + size - 1``) rejects well-formed-looking blobs
that do not describe a legal document. Every failure raises
:class:`~repro.errors.SnapshotCorruptError` (a
:class:`~repro.errors.DocumentStoreError`), carrying the byte offset at
which decoding stopped when one is known — ``struct``/checksum
internals never leak to callers.
"""

from __future__ import annotations

import struct
import sys
import weakref
import zlib
from array import array

from repro.errors import DocumentStoreError, SnapshotCorruptError
from repro.xml.columns import ColumnDocument, DocumentColumns
from repro.xml.document import Document, Node, NodeKind
from repro.xml.index import NodeIndex, adopt_node_index, node_index

SNAPSHOT_MAGIC = b"RXSNAP02"
SNAPSHOT_VERSION = 2

_KIND_BYTES = {
    NodeKind.DOCUMENT: ord("D"),
    NodeKind.ELEMENT: ord("E"),
    NodeKind.ATTRIBUTE: ord("A"),
    NodeKind.TEXT: ord("T"),
    NodeKind.COMMENT: ord("C"),
    NodeKind.PROCESSING_INSTRUCTION: ord("P"),
}
_BYTE_KINDS = {code: kind for kind, code in _KIND_BYTES.items()}

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _column_bytes(values) -> bytes:
    """Little-endian i64 bytes of an int sequence (host-order safe)."""
    column = values if isinstance(values, array) else array("q", values)
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere here
        column = array("q", column)
        column.byteswap()
    return column.tobytes()


def _column_from_bytes(raw: bytes) -> array:
    column = array("q")
    column.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover
        column.byteswap()
    return column


def _string_column(strings) -> bytes:
    """Length table (-1 for None) + u64 blob length + UTF-8 blob."""
    lengths = array("q")
    parts = []
    for text in strings:
        if text is None:
            lengths.append(-1)
        else:
            data = text.encode("utf-8")
            lengths.append(len(data))
            parts.append(data)
    blob = b"".join(parts)
    return _column_bytes(lengths) + _U64.pack(len(blob)) + blob


def encode_snapshot(document: Document) -> bytes:
    """Serialize a finalized document to the v2 binary snapshot format."""
    document._require_finalized()
    index = node_index(document)
    nodes = document.nodes
    id_attr = document.id_attribute.encode("utf-8")
    parts = [
        SNAPSHOT_MAGIC,
        _U32.pack(SNAPSHOT_VERSION),
        _U64.pack(len(nodes)),
        _U32.pack(len(id_attr)),
        id_attr,
        bytes(_KIND_BYTES[node.kind] for node in nodes),
        _column_bytes(index.parent_pre),
        _column_bytes(index.size),
        _column_bytes(index.post),
        _column_bytes(index.depth),
        _string_column(node.name for node in nodes),
        _string_column(node.value for node in nodes),
    ]
    payload = b"".join(parts)
    return payload + _U32.pack(zlib.crc32(payload))


class _Reader:
    """Bounds-checked cursor over a snapshot blob."""

    __slots__ = ("blob", "offset")

    def __init__(self, blob: bytes):
        self.blob = blob
        self.offset = 0

    def take(self, count: int, what: str) -> bytes:
        end = self.offset + count
        if count < 0 or end > len(self.blob):
            raise SnapshotCorruptError(
                f"corrupt snapshot: truncated {what}", offset=self.offset
            )
        raw = self.blob[self.offset : end]
        self.offset = end
        return raw

    def u32(self, what: str) -> int:
        return _U32.unpack(self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return _U64.unpack(self.take(8, what))[0]


def _read_string_column(reader: _Reader, total: int, what: str) -> list[str | None]:
    lengths = _column_from_bytes(reader.take(total * 8, f"{what} length table"))
    blob_len = reader.u64(f"{what} blob length")
    # min() guards the sum identity: once no entry is below -1, the
    # positive total is sum + count(-1), both C-speed over the array.
    if min(lengths, default=0) < -1 or sum(lengths) + lengths.count(-1) != blob_len:
        raise SnapshotCorruptError(
            f"corrupt snapshot: {what} column lengths do not match blob",
            offset=reader.offset,
        )
    blob = reader.take(blob_len, f"{what} blob")
    strings: list[str | None] = []
    append = strings.append
    offset = 0
    try:
        text = blob.decode("utf-8")
        if len(text) == len(blob):
            # Pure-ASCII blob (any multi-byte char would shrink the
            # text): byte offsets are character offsets, so every string
            # is a plain slice of the one decoded text — no per-string
            # decode calls on the hot path.
            for length in lengths:
                if length < 0:
                    append(None)
                else:
                    append(text[offset : offset + length])
                    offset += length
        else:
            # Non-ASCII: slice the bytes and decode per string, so a
            # length table that splits a multi-byte sequence still fails.
            for length in lengths:
                if length < 0:
                    append(None)
                else:
                    append(blob[offset : offset + length].decode("utf-8"))
                    offset += length
    except UnicodeDecodeError as error:
        raise SnapshotCorruptError(f"corrupt snapshot: {what} not UTF-8") from error
    return strings


def _validate_columns(kinds, parent_pre, size, post, depth, names) -> None:
    """O(|D|) structural validation: reject blobs that pass the CRC but
    do not describe a legal finalized document.

    This runs on every decode — eager and lazy alike — so the per-node
    loop is written for speed: direct byte compares instead of kind-enum
    lookups, and attribute contiguity checked against the *predecessor*
    row (attribute ``i`` is contiguous with its element iff ``i-1`` is
    that element or a sibling attribute of it — inductively equivalent
    to ``i == parent + seen + 1`` without a per-element counter)."""
    total = len(kinds)
    doc, elem, attr, txt, comment, pi = (
        ord("D"), ord("E"), ord("A"), ord("T"), ord("C"), ord("P")
    )
    # The loops below gather by parent index; lists hand back their
    # boxed ints directly where arrays would box one per access.
    parent_pre = parent_pre.tolist() if isinstance(parent_pre, array) else parent_pre
    depth = depth.tolist() if isinstance(depth, array) else depth
    if kinds[0] != doc or parent_pre[0] != -1 or depth[0] != 0:
        raise SnapshotCorruptError("corrupt snapshot: malformed document node")
    if names[0] is not None:
        raise SnapshotCorruptError("corrupt snapshot: bad name column at node 0")
    for i in range(1, total):
        code = kinds[i]
        parent = parent_pre[i]
        if parent < 0 or parent >= i:
            raise SnapshotCorruptError(f"corrupt snapshot: node {i} has invalid parent {parent}")
        if depth[i] != depth[parent] + 1:
            raise SnapshotCorruptError(f"corrupt snapshot: depth broken at node {i}")
        owner = kinds[parent]
        if code == attr:
            if owner != elem:
                raise SnapshotCorruptError(f"corrupt snapshot: attribute {i} owned by a non-element")
            # Attributes are numbered immediately after their element,
            # before any of its children — the contiguity every axis
            # kernel's interval arithmetic relies on.
            if i != parent + 1 and not (
                kinds[i - 1] == attr and parent_pre[i - 1] == parent
            ):
                raise SnapshotCorruptError(f"corrupt snapshot: attribute {i} not contiguous with element")
            if names[i] is None:
                raise SnapshotCorruptError(
                    f"corrupt snapshot: bad name column at node {i}"
                )
        else:
            if owner != elem and owner != doc:
                raise SnapshotCorruptError(f"corrupt snapshot: node {i} attached under a leaf")
            if code == elem or code == pi:
                if names[i] is None:
                    raise SnapshotCorruptError(
                        f"corrupt snapshot: bad name column at node {i}"
                    )
            elif code == txt or code == comment:
                if names[i] is not None:
                    raise SnapshotCorruptError(
                        f"corrupt snapshot: bad name column at node {i}"
                    )
            elif code == doc:
                raise SnapshotCorruptError("corrupt snapshot: document node not first")
            else:
                raise SnapshotCorruptError(f"corrupt snapshot: unknown node kind {chr(code)!r}")
    # Exact subtree sizes, bottom-up (children precede nothing: walking
    # pre-order backwards sees every child before its parent total).
    size = size.tolist() if isinstance(size, array) else list(size)
    recomputed = [1] * total
    for i in range(total - 1, 0, -1):
        recomputed[parent_pre[i]] += recomputed[i]
    if size != recomputed:  # one C-speed compare; loop only to blame
        for i in range(total):
            if size[i] != recomputed[i]:
                raise SnapshotCorruptError(f"corrupt snapshot: size broken at node {i}")
    # Closed-form post identity — pins the whole column exactly.
    expected_post = [
        i - d + s - 1 for i, (d, s) in enumerate(zip(depth, size))
    ]
    post = post.tolist() if isinstance(post, array) else list(post)
    if post != expected_post:
        for i in range(total):
            if post[i] != expected_post[i]:
                raise SnapshotCorruptError(f"corrupt snapshot: post broken at node {i}")


def decode_snapshot(blob: bytes, lazy: bool = False) -> Document:
    """Rebuild a finalized document (index pre-seeded) from a snapshot.

    With ``lazy=True`` the decode stops at the columns: a
    :class:`~repro.xml.columns.ColumnDocument` is returned, its index
    partitions built straight from the kind/name columns, and **zero**
    :class:`~repro.xml.document.Node` objects exist until a caller
    touches one — results stay byte-identical to the eager tree in every
    mode (asserted by the lazy property suite and the EXP-LAZY identity
    gate). Validation is identical in both modes.

    Raises :class:`~repro.errors.SnapshotCorruptError` on any corruption:
    truncation, bad magic, wrong version, checksum mismatch, column
    lengths that disagree, or structurally illegal node tables.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise DocumentStoreError("snapshot must be a bytes-like object")
    blob = bytes(blob)
    if len(blob) < len(SNAPSHOT_MAGIC) + 4 + 8 + 4 + 4:
        raise SnapshotCorruptError(
            "corrupt snapshot: truncated header", offset=len(blob)
        )
    if blob[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError("corrupt snapshot: bad magic", offset=0)
    declared_crc = _U32.unpack(blob[-4:])[0]
    if zlib.crc32(blob[:-4]) != declared_crc:
        raise SnapshotCorruptError(
            "corrupt snapshot: checksum mismatch", offset=len(blob) - 4
        )
    reader = _Reader(blob[:-4])
    reader.take(len(SNAPSHOT_MAGIC), "magic")
    version = reader.u32("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruptError(
            f"unsupported snapshot version {version}", offset=len(SNAPSHOT_MAGIC)
        )
    total = reader.u64("node count")
    if total < 1:
        raise SnapshotCorruptError(
            "corrupt snapshot: empty node table", offset=len(SNAPSHOT_MAGIC) + 4
        )
    try:
        id_attribute = reader.take(reader.u32("id length"), "id attribute").decode(
            "utf-8"
        )
    except UnicodeDecodeError as error:
        raise SnapshotCorruptError(
            "corrupt snapshot: id attribute not UTF-8"
        ) from error
    kinds = reader.take(total, "kind column")
    parent_pre = _column_from_bytes(reader.take(total * 8, "parent column"))
    size = _column_from_bytes(reader.take(total * 8, "size column"))
    post = _column_from_bytes(reader.take(total * 8, "post column"))
    depth = _column_from_bytes(reader.take(total * 8, "depth column"))
    names = _read_string_column(reader, total, "name")
    values = _read_string_column(reader, total, "value")
    if reader.offset != len(reader.blob):
        raise SnapshotCorruptError(
            "corrupt snapshot: trailing bytes", offset=reader.offset
        )
    _validate_columns(kinds, parent_pre, size, post, depth, names)

    if lazy:
        columns = DocumentColumns(
            kinds=kinds,
            parent_pre=parent_pre,
            size=size,
            post=post,
            depth=depth,
            names=names,
            values=values,
        )
        lazy_document = ColumnDocument(columns, id_attribute=id_attribute)
        index = NodeIndex.from_columns(
            lazy_document,
            size=size,
            post=post,
            depth=depth,
            parent_pre=parent_pre,
            kinds=kinds,
            names=names,
        )
        # First-in wins in the process cache; keep a strong ref to the
        # winner so the weak-keyed cache entry survives as long as the
        # document does (the index only weak-refs the document back).
        lazy_document._index = adopt_node_index(lazy_document, index)
        return lazy_document

    document = Document(id_attribute=id_attribute)
    root = document.root
    root.pre = 0
    root.size = size[0]
    nodes = [root]
    for i in range(1, total):
        node = Node(document, _BYTE_KINDS[kinds[i]], names[i], values[i])
        parent = nodes[parent_pre[i]]
        node.parent = parent
        if node.kind is NodeKind.ATTRIBUTE:
            parent.attributes.append(node)
        else:
            node.child_index = len(parent.children)
            parent.children.append(node)
        node.pre = i
        node.size = size[i]
        nodes.append(node)
    document.nodes = nodes
    element_children = [c for c in root.children if c.is_element]
    if len(element_children) == 1:
        document.root_element = element_children[0]
    document._finalized = True
    index = NodeIndex.from_columns(
        document, size=size, post=post, depth=depth, parent_pre=parent_pre
    )
    adopt_node_index(document, index)
    return document


def snapshot_column_sizes(blob: bytes) -> dict[str, int]:
    """Storage accounting for a snapshot blob, without decoding it.

    Returns ``{"nodes", "disk_bytes", "column_bytes", "name_bytes",
    "value_bytes"}``: the bytes the blob occupies as stored versus the
    flat-column payload a lazy load keeps resident (one kind byte + four
    8-byte ints per node, plus the raw UTF-8 name/value blobs — Python
    object overhead excluded on purpose; the whole point of the lazy
    path is that there are no per-node objects to count). Only the
    envelope (magic, version, CRC, lengths) is verified here, not the
    structure — this backs ``repro-xpath store list``, which must stay
    cheap per entry.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise DocumentStoreError("snapshot must be a bytes-like object")
    blob = bytes(blob)
    if len(blob) < len(SNAPSHOT_MAGIC) + 4 + 8 + 4 + 4:
        raise SnapshotCorruptError(
            "corrupt snapshot: truncated header", offset=len(blob)
        )
    if blob[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError("corrupt snapshot: bad magic", offset=0)
    declared_crc = _U32.unpack(blob[-4:])[0]
    if zlib.crc32(blob[:-4]) != declared_crc:
        raise SnapshotCorruptError(
            "corrupt snapshot: checksum mismatch", offset=len(blob) - 4
        )
    reader = _Reader(blob[:-4])
    reader.take(len(SNAPSHOT_MAGIC), "magic")
    version = reader.u32("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruptError(
            f"unsupported snapshot version {version}", offset=len(SNAPSHOT_MAGIC)
        )
    total = reader.u64("node count")
    if total < 1:
        raise SnapshotCorruptError(
            "corrupt snapshot: empty node table", offset=len(SNAPSHOT_MAGIC) + 4
        )
    reader.take(reader.u32("id length"), "id attribute")
    reader.take(total, "kind column")
    reader.take(total * 32, "int columns")
    string_bytes = []
    for what in ("name", "value"):
        reader.take(total * 8, f"{what} length table")
        blob_len = reader.u64(f"{what} blob length")
        reader.take(blob_len, f"{what} blob")
        string_bytes.append(blob_len)
    name_bytes, value_bytes = string_bytes
    return {
        "nodes": total,
        "disk_bytes": len(blob),
        "column_bytes": total * 33 + name_bytes + value_bytes,
        "name_bytes": name_bytes,
        "value_bytes": value_bytes,
    }


# ----------------------------------------------------------------------
# Parent-side blob cache
# ----------------------------------------------------------------------

#: Shipping the same document to many worker shards must not re-encode
#: it per shard; weak keys keep the cache from pinning documents (same
#: contract as the index cache).
_SNAPSHOT_CACHE: "weakref.WeakKeyDictionary[Document, bytes]" = (
    weakref.WeakKeyDictionary()
)


def cached_snapshot(document: Document) -> bytes:
    """:func:`encode_snapshot`, weak-cached per document."""
    blob = _SNAPSHOT_CACHE.get(document)
    if blob is None:
        blob = encode_snapshot(document)
        _SNAPSHOT_CACHE[document] = blob
    return blob
