"""Programmatic document construction.

Two styles are offered:

* :class:`DocumentBuilder` — an imperative, stack-based builder
  (``start``/``end``/``text``/...) convenient for generators that emit
  trees while walking some other structure (the workload generators in
  :mod:`repro.workloads.documents` use it).
* :func:`element`/:func:`text` — a declarative nested-call style for
  literal trees in tests::

      doc = element("a", {"id": "1"}, element("b", {}, text("hi"))).build()
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.xml.document import Document, Node, NodeKind


class DocumentBuilder:
    """Imperative stack-based builder for :class:`Document` trees.

    Example::

        b = DocumentBuilder()
        b.start("a", id="10")
        b.start("b", id="11")
        b.text("hello")
        b.end()
        b.end()
        doc = b.build()
    """

    def __init__(self, id_attribute: str = "id"):
        self.document = Document(id_attribute=id_attribute)
        self._stack: list[Node] = [self.document.root]
        self._built = False

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack) - 1

    def start(self, name: str, attributes: dict[str, str] | None = None, **kw_attributes: str):
        """Open an element; attributes may be given as a dict or keywords."""
        element = self.document.new_node(NodeKind.ELEMENT, name=name)
        self.document.append_child(self._stack[-1], element)
        merged = dict(attributes or {})
        merged.update(kw_attributes)
        for attr_name, attr_value in merged.items():
            attr = self.document.new_node(NodeKind.ATTRIBUTE, name=attr_name, value=str(attr_value))
            self.document.set_attribute_node(element, attr)
        self._stack.append(element)
        return self

    def end(self):
        """Close the most recently opened element."""
        if len(self._stack) == 1:
            raise ReproError("end() with no open element")
        self._stack.pop()
        return self

    def leaf(self, name: str, content: str | None = None, attributes: dict[str, str] | None = None, **kw_attributes: str):
        """Open an element, optionally add text, and close it."""
        self.start(name, attributes, **kw_attributes)
        if content is not None:
            self.text(content)
        return self.end()

    def text(self, content: str):
        """Append a text node to the open element.

        Empty content is a no-op: the XPath data model has no empty text
        nodes (the parser never creates them either), and allowing one
        here would break the serialize/parse round-trip.
        """
        if self._stack[-1].is_document:
            raise ReproError("text() outside the root element")
        if content == "":
            return self
        node = self.document.new_node(NodeKind.TEXT, value=content)
        self.document.append_child(self._stack[-1], node)
        return self

    def comment(self, content: str):
        """Append a comment node."""
        node = self.document.new_node(NodeKind.COMMENT, value=content)
        self.document.append_child(self._stack[-1], node)
        return self

    def processing_instruction(self, target: str, data: str = ""):
        """Append a processing-instruction node."""
        node = self.document.new_node(NodeKind.PROCESSING_INSTRUCTION, name=target, value=data)
        self.document.append_child(self._stack[-1], node)
        return self

    def build(self) -> Document:
        """Finalize and return the document. All elements must be closed."""
        if self._built:
            raise ReproError("build() called twice")
        if len(self._stack) != 1:
            open_names = ", ".join(n.name or "?" for n in self._stack[1:])
            raise ReproError(f"build() with unclosed element(s): {open_names}")
        if not self.document.root.children:
            raise ReproError("build() on an empty document (no root element)")
        self._built = True
        return self.document.finalize()


class _Spec:
    """Declarative node specification used by :func:`element`/:func:`text`."""

    def __init__(self, kind: NodeKind, name: str | None, value: str | None,
                 attributes: dict[str, str], children: tuple["_Spec", ...]):
        self.kind = kind
        self.name = name
        self.value = value
        self.attributes = attributes
        self.children = children

    def build(self, id_attribute: str = "id") -> Document:
        """Materialize this spec (which must be an element) as a document."""
        if self.kind is not NodeKind.ELEMENT:
            raise ReproError("only an element spec can be the document root")
        document = Document(id_attribute=id_attribute)
        self._attach(document, document.root)
        return document.finalize()

    def _attach(self, document: Document, parent: Node) -> None:
        node = document.new_node(self.kind, name=self.name, value=self.value)
        document.append_child(parent, node)
        for attr_name, attr_value in self.attributes.items():
            attr = document.new_node(NodeKind.ATTRIBUTE, name=attr_name, value=str(attr_value))
            document.set_attribute_node(node, attr)
        for child in self.children:
            child._attach(document, node)


def element(name: str, attributes: dict[str, str] | None = None, *children: "_Spec | str") -> _Spec:
    """Declarative element spec; string children become text nodes."""
    specs = tuple(text(c) if isinstance(c, str) else c for c in children)
    return _Spec(NodeKind.ELEMENT, name, None, dict(attributes or {}), specs)


def text(content: str) -> _Spec:
    """Declarative text-node spec."""
    return _Spec(NodeKind.TEXT, None, content, {}, ())


def comment(content: str) -> _Spec:
    """Declarative comment-node spec."""
    return _Spec(NodeKind.COMMENT, None, content, {}, ())


def processing_instruction(target: str, data: str = "") -> _Spec:
    """Declarative processing-instruction spec."""
    return _Spec(NodeKind.PROCESSING_INSTRUCTION, target, data, {}, ())
