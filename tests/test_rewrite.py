"""Tests for the optimizer pass: each rewrite fires when (and only when)
its guard allows, and rewritten queries are equivalent to the originals
on a differential corpus."""

import random

import pytest

from repro.engine import XPathEngine
from repro.workloads.documents import random_document
from repro.workloads.queries import random_query
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.xpath.rewrite import RewriteStats, rewrite
from repro.xpath.unparse import unparse


def optimized(source):
    expr = normalize(parse_xpath(source))
    compute_relevance(expr)
    stats = RewriteStats()
    result = rewrite(expr, stats)
    compute_relevance(result)
    return result, stats


# --- descendant fusion --------------------------------------------------------

def test_double_slash_fuses_to_descendant():
    expr, stats = optimized("//a")
    assert stats.descendant_fusions == 1
    assert unparse(expr) == "/descendant::a"


def test_fusion_inside_longer_path():
    expr, stats = optimized("a//b/c")
    assert stats.descendant_fusions == 1
    assert unparse(expr) == "child::a/descendant::b/child::c"


def test_fusion_keeps_position_free_predicates():
    expr, stats = optimized("//a[b = 1]")
    assert stats.descendant_fusions == 1
    assert unparse(expr).startswith("/descendant::a[")


def test_fusion_blocked_by_position_predicate():
    # //a[1] means "first a-child of each node", NOT "first descendant".
    expr, stats = optimized("//a[1]")
    assert stats.descendant_fusions == 0
    assert "descendant-or-self::node()" in unparse(expr)


def test_fusion_blocked_by_predicate_on_dos_step():
    expr, stats = optimized("descendant-or-self::node()[b]/child::a")
    assert stats.descendant_fusions == 0


def test_fusion_only_for_child_followup():
    expr, stats = optimized("descendant-or-self::node()/parent::a")
    assert stats.descendant_fusions == 0


# --- self-step elision -----------------------------------------------------------

def test_self_node_elision():
    expr, stats = optimized("a/./b")
    assert stats.self_elisions == 1
    assert unparse(expr) == "child::a/child::b"


def test_lone_self_step_kept():
    expr, stats = optimized(".")
    assert stats.self_elisions == 0
    assert unparse(expr) == "self::node()"


def test_self_with_test_kept():
    expr, stats = optimized("a/self::a/b")
    assert stats.self_elisions == 0


# --- constant folding -------------------------------------------------------------

def test_arithmetic_folds():
    expr, stats = optimized("1 + 2 * 3")
    assert unparse(expr) == "7"
    assert stats.constants_folded >= 2


def test_comparison_folds():
    expr, _ = optimized("2 > 1")
    assert unparse(expr) == "true()"


def test_boolean_shortcuts():
    expr, _ = optimized("false() and a")
    assert unparse(expr) == "false()"
    expr, _ = optimized("true() and boolean(a)")
    assert unparse(expr) == "boolean(child::a)"
    expr, _ = optimized("true() or boolean(a)")
    assert unparse(expr) == "true()"
    expr, _ = optimized("boolean(a) or false()")
    assert unparse(expr) == "boolean(child::a)"


def test_string_functions_fold():
    expr, _ = optimized("concat('a', 'b')")
    assert unparse(expr) == "'ab'"
    expr, _ = optimized("string-length('xyz')")
    assert unparse(expr) == "3"
    expr, _ = optimized("contains('hello', 'ell')")
    assert unparse(expr) == "true()"


def test_double_negation():
    expr, stats = optimized("not(not(boolean(a)))")
    assert stats.double_negations == 1
    assert unparse(expr) == "boolean(child::a)"


def test_folding_does_not_touch_node_sets():
    expr, _ = optimized("count(a) + 1")
    assert "count" in unparse(expr)


# --- predicate elimination -----------------------------------------------------------

def test_true_predicate_dropped():
    expr, stats = optimized("a[1 < 2]")
    assert stats.predicates_eliminated == 1
    assert unparse(expr) == "child::a"


def test_false_predicate_collapses_step():
    expr, stats = optimized("a[1 > 2]")
    assert stats.predicates_eliminated == 1
    doc_engine = XPathEngine(
        __import__("repro.xml.parser", fromlist=["parse_document"]).parse_document("<a/>")
    )
    # The collapsed step selects nothing on any document.
    assert doc_engine.evaluate(unparse(expr)) == []


# --- engine integration ----------------------------------------------------------------

def test_engine_optimize_flag():
    from repro.xml.parser import parse_document

    doc = parse_document("<r><a>1</a><a>2</a></r>")
    plain = XPathEngine(doc)
    optimizing = XPathEngine(doc, optimize=True)
    compiled = optimizing.compile("//a[1 = 1]")
    assert compiled.rewrite_stats is not None
    assert compiled.rewrite_stats.total() >= 2  # fold + predicate + fusion
    assert plain.compile("//a").rewrite_stats is None
    assert optimizing.evaluate("//a[1 = 1]") == plain.evaluate("//a[1 = 1]")


def test_optimized_queries_can_become_core():
    """Folding a constant predicate away can promote a query into Core
    XPath, unlocking the linear-time evaluator."""
    from repro.xml.parser import parse_document

    doc = parse_document("<r><a><b/></a></r>")
    engine = XPathEngine(doc, optimize=True)
    compiled = engine.compile("//a[b][true()]")
    assert compiled.is_core_xpath
    assert compiled.best_algorithm() == "corexpath"


# --- equivalence on a corpus -------------------------------------------------------------

CORPUS = [
    "//a", "//a[1]", "a//b//c", "//a[b = 1]", "//*[. = 100]/..",
    "a/./b/.", "//a[not(not(b))]", "//a[1 + 1 = 2]", "//a[false() or b]",
    "count(//a) * (1 + 0)", "//a[position() = 1 + 1]",
    "//*[concat('x', 'y') = 'xy']",
]


@pytest.mark.parametrize("query", CORPUS)
def test_rewrite_preserves_semantics_on_corpus(query):
    rng = random.Random(hash(query) & 0xFFFF)
    for _ in range(5):
        doc = random_document(rng, max_nodes=15)
        plain = XPathEngine(doc)
        optimizing = XPathEngine(doc, optimize=True)
        for algorithm in ("topdown", "optmincontext"):
            assert optimizing.evaluate(query, algorithm=algorithm) == plain.evaluate(
                query, algorithm=algorithm
            ), (query, algorithm)


def test_rewrite_preserves_semantics_fuzz():
    rng = random.Random(42)
    for _ in range(60):
        doc = random_document(rng, max_nodes=12)
        query = random_query(rng)
        plain = XPathEngine(doc)
        optimizing = XPathEngine(doc, optimize=True)
        expected = plain.evaluate(query, algorithm="mincontext")
        got = optimizing.evaluate(query, algorithm="mincontext")
        assert got == expected, query
