"""Property-based tests (hypothesis) for axis algebra invariants.

The key laws the paper's machinery relies on:

* Definition 1: ``χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}`` for every axis;
* the self/ancestor/descendant/preceding/following partition of dom;
* converse symmetry (``y ∈ following(x) ⟺ x ∈ preceding(y)``, etc.);
* set functions = union of per-node enumerations.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.axes.axes import ALL_AXES, axis_nodes, axis_set, inverse_axis_set
from repro.workloads.documents import random_document

_TREE_AXES = sorted(ALL_AXES - {"id"})


@st.composite
def documents(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    size = draw(st.integers(min_value=1, max_value=25))
    return random_document(random.Random(seed), max_nodes=size)


@st.composite
def document_and_subset(draw):
    doc = draw(documents())
    picks = draw(st.lists(st.integers(min_value=0, max_value=10_000), max_size=5))
    nodes = {doc.nodes[p % len(doc.nodes)] for p in picks}
    return doc, nodes


@settings(max_examples=60, deadline=None)
@given(document_and_subset())
def test_inverse_axis_matches_definition(data):
    doc, Y = data
    for axis in _TREE_AXES:
        expected = {
            x for x in doc.nodes if not set(axis_nodes(doc, axis, x)).isdisjoint(Y)
        }
        assert inverse_axis_set(doc, axis, Y) == expected, axis


@settings(max_examples=60, deadline=None)
@given(document_and_subset())
def test_axis_set_is_union_of_singletons(data):
    doc, X = data
    for axis in _TREE_AXES:
        expected = set()
        for x in X:
            expected.update(axis_nodes(doc, axis, x))
        assert axis_set(doc, axis, X) == expected, axis


@settings(max_examples=60, deadline=None)
@given(documents())
def test_partition_of_dom(doc):
    """self ∪ ancestor ∪ descendant ∪ preceding ∪ following covers every
    non-attribute node exactly once (for non-attribute context nodes)."""
    tree_nodes = [n for n in doc.nodes if not n.is_attribute]
    for x in tree_nodes:
        parts = {
            "self": {x},
            "ancestor": set(axis_nodes(doc, "ancestor", x)),
            "descendant": set(axis_nodes(doc, "descendant", x)),
            "preceding": set(axis_nodes(doc, "preceding", x)),
            "following": set(axis_nodes(doc, "following", x)),
        }
        union = set()
        total = 0
        for nodes in parts.values():
            union |= nodes
            total += len(nodes)
        assert union == set(tree_nodes)
        assert total == len(tree_nodes), f"overlap at {x.path()}"


@settings(max_examples=60, deadline=None)
@given(documents())
def test_converse_symmetry(doc):
    pairs = [
        ("child", "parent"),
        ("descendant", "ancestor"),
        ("following", "preceding"),
        ("following-sibling", "preceding-sibling"),
    ]
    # Attribute context nodes break perfect symmetry by design: the
    # following/preceding/sibling axes never *return* attribute nodes, so
    # the laws are stated over tree nodes (inverse_axis_set handles the
    # attribute corners, tested separately above).
    nodes = [n for n in doc.nodes if not n.is_attribute]
    for forward, backward in pairs:
        for x in nodes:
            for y in axis_nodes(doc, forward, x):
                assert x in set(axis_nodes(doc, backward, y)), (forward, x.path(), y.path())


@settings(max_examples=40, deadline=None)
@given(documents())
def test_descendant_matches_interval(doc):
    for x in doc.nodes:
        via_axis = set(axis_nodes(doc, "descendant", x))
        via_interval = {
            y
            for y in doc.nodes
            if x.pre < y.pre < x.pre + x.size and not y.is_attribute
        }
        assert via_axis == via_interval


@settings(max_examples=40, deadline=None)
@given(documents())
def test_proximity_order_directions(doc):
    for x in doc.nodes:
        following = [n.pre for n in axis_nodes(doc, "following", x)]
        assert following == sorted(following)
        preceding = [n.pre for n in axis_nodes(doc, "preceding", x)]
        assert preceding == sorted(preceding, reverse=True)
        ancestors = [n.pre for n in axis_nodes(doc, "ancestor", x)]
        assert ancestors == sorted(ancestors, reverse=True)
