"""Tests for the persistent document store (paper §7 future work)."""

import json
import random

import pytest

from repro.engine import XPathEngine
from repro.workloads.documents import book_catalog, random_document, running_example_document
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.store import DocumentStore, DocumentStoreError


@pytest.fixture()
def store(tmp_path):
    return DocumentStore(tmp_path / "store.json")


def test_save_and_load_round_trip(store):
    original = parse_document('<a id="1"><b k="v">text<!--c--><?p d?></b></a>')
    store.save("doc", original)
    loaded = store.load("doc")
    assert serialize(loaded) == serialize(original)
    assert len(loaded) == len(original)
    # Pre-order numbering identical node for node.
    for a, b in zip(original.nodes, loaded.nodes):
        assert (a.kind, a.name, a.value, a.pre, a.size) == (b.kind, b.name, b.value, b.pre, b.size)


def test_loaded_document_queries_identically(store):
    original = running_example_document()
    store.save("paper", original)
    loaded = store.load("paper")
    query = "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"
    expected = [n.xml_id for n in XPathEngine(original).evaluate(query)]
    got = [n.xml_id for n in XPathEngine(loaded).evaluate(query)]
    assert got == expected == ["13", "14", "21", "22", "23", "24"]


def test_store_persists_across_instances(store, tmp_path):
    store.save("one", parse_document("<a/>"))
    reopened = DocumentStore(tmp_path / "store.json")
    assert "one" in reopened
    assert reopened.load("one").root_element.name == "a"


def test_multiple_documents(store):
    store.save("a", parse_document("<a/>"))
    store.save("b", parse_document("<b><c/></b>"))
    assert store.names() == ["a", "b"]
    assert len(store) == 2
    assert store.load("b").root_element.children[0].name == "c"


def test_overwrite(store):
    store.save("x", parse_document("<a/>"))
    store.save("x", parse_document("<b/>"))
    assert store.load("x").root_element.name == "b"
    assert len(store) == 1


def test_delete(store):
    store.save("x", parse_document("<a/>"))
    store.delete("x")
    assert "x" not in store
    with pytest.raises(DocumentStoreError):
        store.delete("x")


def test_missing_document(store):
    with pytest.raises(DocumentStoreError):
        store.load("nope")


def test_custom_id_attribute_preserved(store):
    original = parse_document('<a key="k1"/>', id_attribute="key")
    store.save("doc", original)
    loaded = store.load("doc")
    assert loaded.element_by_id("k1") is loaded.root_element


def test_corrupt_file_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all", encoding="utf-8")
    with pytest.raises(DocumentStoreError):
        DocumentStore(path)
    path.write_text('{"something": "else"}', encoding="utf-8")
    with pytest.raises(DocumentStoreError):
        DocumentStore(path)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "old.json"
    path.write_text('{"version": 99, "documents": {}}', encoding="utf-8")
    with pytest.raises(DocumentStoreError):
        DocumentStore(path)


def _write_v1_store(path, rows, id_attribute="id"):
    """Hand-craft a legacy (format v1) store file with inline node rows."""
    payload = {
        "version": 1,
        "documents": {"x": {"id_attribute": id_attribute, "nodes": rows}},
    }
    path.write_text(json.dumps(payload), encoding="utf-8")


_V1_ROWS = [
    ["D", None, None, -1],
    ["E", "a", None, 0],
    ["A", "id", "1", 1],
    ["T", None, "text", 1],
]


def test_legacy_v1_store_loads_transparently(tmp_path):
    path = tmp_path / "old.json"
    _write_v1_store(path, _V1_ROWS)
    loaded = DocumentStore(path).load("x")
    assert serialize(loaded) == '<a id="1">text</a>'
    assert loaded.element_by_id("1") is loaded.root_element


def test_corrupt_node_table_rejected(tmp_path):
    rows = [list(row) for row in _V1_ROWS]
    rows[1][0] = "Z"  # unknown kind code
    path = tmp_path / "bad.json"
    _write_v1_store(path, rows)
    with pytest.raises(DocumentStoreError):
        DocumentStore(path).load("x")


@pytest.mark.parametrize(
    "mutate",
    [
        lambda rows: rows.__setitem__(1, ["E", "a", None]),  # wrong arity
        lambda rows: rows.__setitem__(1, ["E", "a", None, 0, "extra"]),
        lambda rows: rows.__setitem__(1, ["E", "a", None, "0"]),  # non-int parent
        lambda rows: rows.__setitem__(1, ["E", "a", None, True]),  # bool parent
        lambda rows: rows.__setitem__(1, ["E", 7, None, 0]),  # non-string name
        lambda rows: rows.__setitem__(2, ["A", "id", "1", 3]),  # attr → text parent
        lambda rows: rows.__setitem__(1, "not a row"),
        lambda rows: rows.__setitem__(0, ["E", "a", None, -1]),  # no document node
    ],
)
def test_malformed_v1_rows_raise_store_error_not_bare_exceptions(tmp_path, mutate):
    """Regression (bugfix a): malformed rows used to escape as bare
    ValueError/TypeError from tuple unpacking, int comparison, or
    set_attribute_node — breaking the CLI's error-family exit codes."""
    rows = [list(row) if isinstance(row, list) else row for row in _V1_ROWS]
    mutate(rows)
    path = tmp_path / "bad.json"
    _write_v1_store(path, rows)
    store = DocumentStore(path)
    with pytest.raises(DocumentStoreError):
        store.load("x")


def test_failed_write_leaves_no_temp_file(store, tmp_path):
    """Regression (bugfix b): a failing serialization mid-save used to
    strand ``store.json.tmp`` next to the catalog."""
    store.save("ok", parse_document("<a/>"))
    store._data["documents"]["bad"] = object()  # unserializable
    with pytest.raises(TypeError):
        store._write()
    debris = list(tmp_path.glob("*.tmp")) + list(tmp_path.glob("**/*.tmp"))
    assert debris == [], f"temp files stranded: {debris}"
    # The catalog on disk is still the last good state.
    assert "ok" in DocumentStore(tmp_path / "store.json")


def test_saving_one_document_does_not_rewrite_others(store, tmp_path):
    """Regression (bugfix c): every save used to rewrite the whole
    catalog JSON — O(total store) per document. Payloads now live in
    per-document sidecar files and the catalog stays small."""
    big = book_catalog(books=40)
    store.save("big", big)
    sidecars = sorted(store.sidecar_dir.iterdir())
    assert len(sidecars) == 1
    big_payload_mtime = sidecars[0].stat().st_mtime_ns
    big_payload_bytes = sidecars[0].read_bytes()
    store.save("small", parse_document("<a/>"))
    # The big document's payload file was not touched by the other save.
    assert sorted(store.sidecar_dir.iterdir())[0].stat().st_mtime_ns == (
        big_payload_mtime
    )
    assert sorted(store.sidecar_dir.iterdir())[0].read_bytes() == big_payload_bytes
    # The catalog itself holds references, not node tables: its size is
    # independent of document sizes.
    catalog = (tmp_path / "store.json").read_bytes()
    assert len(catalog) < 300
    assert b"nodes" not in catalog


def test_migrate_converts_v1_entries_to_sidecars(tmp_path):
    path = tmp_path / "old.json"
    _write_v1_store(path, _V1_ROWS)
    store = DocumentStore(path)
    assert store.migrate() == ["x"]
    assert store.sidecar_dir.exists() and len(list(store.sidecar_dir.iterdir())) == 1
    reopened = DocumentStore(path)
    assert serialize(reopened.load("x")) == '<a id="1">text</a>'
    raw = json.loads(path.read_text())
    assert raw["version"] == 2
    assert raw["documents"]["x"]["format"] == 2


def test_load_snapshot_round_trips_raw_blob(store):
    from repro.xml.snapshot import decode_snapshot

    original = running_example_document()
    store.save("paper", original)
    blob = store.load_snapshot("paper")
    assert isinstance(blob, bytes)
    assert serialize(decode_snapshot(blob)) == serialize(original)


def test_delete_removes_sidecar(store):
    store.save("x", parse_document("<a/>"))
    assert len(list(store.sidecar_dir.iterdir())) == 1
    store.delete("x")
    assert list(store.sidecar_dir.iterdir()) == []


def test_random_documents_round_trip(store):
    rng = random.Random(11)
    for index in range(10):
        doc = random_document(rng, max_nodes=25)
        store.save(f"doc{index}", doc)
        assert serialize(store.load(f"doc{index}")) == serialize(doc)


def test_catalog_round_trip_and_query(store):
    doc = book_catalog(books=4)
    store.save("catalog", doc)
    loaded = store.load("catalog")
    assert XPathEngine(loaded).evaluate("count(//book)") == 4.0
