"""Tests for the persistent document store (paper §7 future work)."""

import json
import random

import pytest

from repro.engine import XPathEngine
from repro.workloads.documents import book_catalog, random_document, running_example_document
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.store import DocumentStore, DocumentStoreError


@pytest.fixture()
def store(tmp_path):
    return DocumentStore(tmp_path / "store.json")


def test_save_and_load_round_trip(store):
    original = parse_document('<a id="1"><b k="v">text<!--c--><?p d?></b></a>')
    store.save("doc", original)
    loaded = store.load("doc")
    assert serialize(loaded) == serialize(original)
    assert len(loaded) == len(original)
    # Pre-order numbering identical node for node.
    for a, b in zip(original.nodes, loaded.nodes):
        assert (a.kind, a.name, a.value, a.pre, a.size) == (b.kind, b.name, b.value, b.pre, b.size)


def test_loaded_document_queries_identically(store):
    original = running_example_document()
    store.save("paper", original)
    loaded = store.load("paper")
    query = "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"
    expected = [n.xml_id for n in XPathEngine(original).evaluate(query)]
    got = [n.xml_id for n in XPathEngine(loaded).evaluate(query)]
    assert got == expected == ["13", "14", "21", "22", "23", "24"]


def test_store_persists_across_instances(store, tmp_path):
    store.save("one", parse_document("<a/>"))
    reopened = DocumentStore(tmp_path / "store.json")
    assert "one" in reopened
    assert reopened.load("one").root_element.name == "a"


def test_multiple_documents(store):
    store.save("a", parse_document("<a/>"))
    store.save("b", parse_document("<b><c/></b>"))
    assert store.names() == ["a", "b"]
    assert len(store) == 2
    assert store.load("b").root_element.children[0].name == "c"


def test_overwrite(store):
    store.save("x", parse_document("<a/>"))
    store.save("x", parse_document("<b/>"))
    assert store.load("x").root_element.name == "b"
    assert len(store) == 1


def test_delete(store):
    store.save("x", parse_document("<a/>"))
    store.delete("x")
    assert "x" not in store
    with pytest.raises(DocumentStoreError):
        store.delete("x")


def test_missing_document(store):
    with pytest.raises(DocumentStoreError):
        store.load("nope")


def test_custom_id_attribute_preserved(store):
    original = parse_document('<a key="k1"/>', id_attribute="key")
    store.save("doc", original)
    loaded = store.load("doc")
    assert loaded.element_by_id("k1") is loaded.root_element


def test_corrupt_file_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all", encoding="utf-8")
    with pytest.raises(DocumentStoreError):
        DocumentStore(path)
    path.write_text('{"something": "else"}', encoding="utf-8")
    with pytest.raises(DocumentStoreError):
        DocumentStore(path)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "old.json"
    path.write_text('{"version": 99, "documents": {}}', encoding="utf-8")
    with pytest.raises(DocumentStoreError):
        DocumentStore(path)


def test_corrupt_node_table_rejected(store, tmp_path):
    store.save("x", parse_document("<a/>"))
    raw = json.loads((tmp_path / "store.json").read_text())
    raw["documents"]["x"]["nodes"][1][0] = "Z"  # unknown kind code
    (tmp_path / "store.json").write_text(json.dumps(raw))
    reopened = DocumentStore(tmp_path / "store.json")
    with pytest.raises(DocumentStoreError):
        reopened.load("x")


def test_random_documents_round_trip(store):
    rng = random.Random(11)
    for index in range(10):
        doc = random_document(rng, max_nodes=25)
        store.save(f"doc{index}", doc)
        assert serialize(store.load(f"doc{index}")) == serialize(doc)


def test_catalog_round_trip_and_query(store):
    doc = book_catalog(books=4)
    store.save("catalog", doc)
    loaded = store.load("catalog")
    assert XPathEngine(loaded).evaluate("count(//book)") == 4.0
