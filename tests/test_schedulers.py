"""The scheduler seam: one canonical batch through all four backends.

The contract: every scheduler — serial, thread, process, async — is an
implementation detail of the *dispatch* phase only. Prepare and merge
are shared, so for one canonical batch all four must produce
byte-identical values, identical result ordering, identical resolved
algorithms, and merged statistics that are the exact sums of their
per-shard counters. The serial scheduler is the reference (zero
concurrency, nothing to race), and the sequential ``evaluate_many``
path anchors all of them to the unsharded semantics.
"""

import pytest

from repro.service import (
    SCHEDULER_BACKENDS,
    AsyncScheduler,
    ProcessScheduler,
    QueryService,
    Scheduler,
    SerialScheduler,
    ThreadScheduler,
    make_scheduler,
)
from repro.workloads.documents import (
    book_catalog,
    numbered_line,
    running_example_document,
    wide_tree,
)
from repro.xml.parser import parse_document

#: The canonical batch: duplicate queries (cache hits inside shards),
#: node-set and scalar results, Core and full-XPath fragments.
QUERIES = [
    "//b",
    "count(//*)",
    "/descendant::*[position() = last()]",
    "//b",
    "//c[. > 15]",
]


@pytest.fixture(scope="module")
def documents():
    return [
        running_example_document(),
        book_catalog(books=4),
        wide_tree(width=12),
        parse_document('<a id="1"><b id="2">10</b><c id="3">20</c></a>'),
        numbered_line(9),
        parse_document("<a><b>99</b></a>"),
    ]


@pytest.fixture(scope="module")
def sequential(documents):
    return QueryService().evaluate_many(QUERIES, documents)


def test_backend_registry_is_complete():
    assert SCHEDULER_BACKENDS == ("serial", "thread", "process", "async")
    for backend, scheduler_class in zip(
        SCHEDULER_BACKENDS,
        (SerialScheduler, ThreadScheduler, ProcessScheduler, AsyncScheduler),
    ):
        scheduler = make_scheduler(backend, workers=2)
        assert type(scheduler) is scheduler_class
        assert scheduler.name == backend
        assert isinstance(scheduler, Scheduler)
    with pytest.raises(ValueError, match="fiber"):
        make_scheduler("fiber")


@pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
@pytest.mark.parametrize("strategy", ("round-robin", "size-balanced"))
def test_all_schedulers_match_the_sequential_path(
    documents, sequential, backend, strategy
):
    """Byte-identical values in identical order, whatever dispatches."""
    scheduler = make_scheduler(backend, workers=3, shard_by=strategy)
    batch = scheduler.execute(QUERIES, documents)
    assert batch.values == sequential.values
    assert batch.algorithms == sequential.algorithms
    assert batch.queries == list(QUERIES)
    assert batch.document_count == len(documents)
    # Node-set cells must hold the *parent's* node objects (the process
    # backend decodes indices back into the caller's trees).
    for row, sequential_row in zip(batch.values, sequential.values):
        for value, sequential_value in zip(row, sequential_row):
            if isinstance(value, list):
                assert all(a is b for a, b in zip(value, sequential_value))


@pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
def test_all_schedulers_merge_stats_exactly(documents, backend):
    """Merged counters == per-shard sums, for both cache layers."""
    scheduler = make_scheduler(backend, workers=3, plan_capacity=4)
    batch = scheduler.execute(QUERIES, documents)
    assert len(batch.shards) == batch.workers > 1
    for stats_name in ("plan_stats", "result_stats"):
        merged = getattr(batch, stats_name)
        for counter in ("hits", "misses", "evictions"):
            total = sum(shard[stats_name][counter] for shard in batch.shards)
            assert merged[counter] == total, (backend, stats_name, counter)
    for shard in batch.shards:
        assert shard["backend"] == backend


@pytest.mark.parametrize("backend", ("thread", "async"))
def test_in_process_backends_report_stats_identical_to_serial(documents, backend):
    """Serial, thread, and async all seed workers with the parent's
    compiled plans and shard identically, so their merged counters must
    be *equal*, not merely internally consistent — the async backend is
    indistinguishable from the sync ones counter-for-counter."""
    serial = make_scheduler("serial", workers=3).execute(QUERIES, documents)
    other = make_scheduler(backend, workers=3).execute(QUERIES, documents)
    counters = ("hits", "misses", "evictions")
    for stats_name in ("plan_stats", "result_stats"):
        serial_stats = getattr(serial, stats_name)
        other_stats = getattr(other, stats_name)
        assert {key: other_stats[key] for key in counters} == {
            key: serial_stats[key] for key in counters
        }, (backend, stats_name)


@pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
def test_all_schedulers_agree_on_the_empty_batch(backend):
    batch = make_scheduler(backend, workers=4).execute(QUERIES, [])
    assert batch.values == []
    assert batch.workers == 0
    assert batch.shards == []
    assert batch.plan_stats["hits"] == batch.plan_stats["misses"] == 0


@pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
def test_all_schedulers_surface_query_errors_before_dispatch(documents, backend):
    """Prepare runs in the parent: bad queries fail fast, no workers."""
    from repro.errors import FragmentViolationError, XPathSyntaxError

    scheduler = make_scheduler(backend, workers=2)
    with pytest.raises(XPathSyntaxError):
        scheduler.execute(["//b["], documents)
    with pytest.raises(FragmentViolationError):
        scheduler.execute(["//b[position() = 1]"], documents, algorithm="corexpath")


def test_prepare_dispatch_merge_phases_compose(documents, sequential):
    """The seam itself: a caller can run the three phases separately and
    get the same merged batch execute() produces."""
    scheduler = SerialScheduler(workers=3, shard_by="size-balanced")
    prepared = scheduler.prepare(QUERIES, documents)
    assert len(prepared.shards) == 3
    assert prepared.algorithms == sequential.algorithms
    outcomes = scheduler.dispatch(prepared)
    assert len(outcomes) == len(prepared.shards)
    batch = scheduler.merge(prepared, outcomes)
    assert batch.values == sequential.values


def test_async_scheduler_semaphore_bounds_concurrency(documents, sequential):
    """max_concurrency=1 degrades the async backend to serial dispatch —
    results unchanged, which pins down that the semaphore path is live."""
    scheduler = AsyncScheduler(workers=4, max_concurrency=1)
    batch = scheduler.execute(QUERIES, documents)
    assert batch.values == sequential.values
    with pytest.raises(ValueError, match="max_concurrency"):
        AsyncScheduler(workers=2, max_concurrency=0)


def test_scheduler_rejects_bad_construction():
    with pytest.raises(ValueError, match="workers"):
        SerialScheduler(workers=0)
    with pytest.raises(ValueError, match="shard strategy"):
        ThreadScheduler(shard_by="by-vibes")


def test_process_scheduler_rejects_node_set_bindings(documents):
    node = documents[0].root
    with pytest.raises(ValueError, match="scalar"):
        ProcessScheduler(workers=2, variables={"v": [node]})
    # In-process backends accept the same bindings.
    for backend in ("serial", "thread", "async"):
        batch = make_scheduler(backend, workers=2, variables={"v": [node]}).execute(
            ["$v"], documents[:2]
        )
        assert batch.values[0][0] == [node]
