"""Tests for normalization: Section 2.2's assumptions made real."""

import pytest

from repro.errors import UnboundVariableError, XPathTypeError
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    FunctionCall,
    NumberLiteral,
    Path,
    StringLiteral,
)
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.unparse import unparse


def norm(source, variables=None):
    return normalize(parse_xpath(source), variables)


# --- static typing -----------------------------------------------------------

def test_static_types():
    assert norm("1").value_type == "num"
    assert norm("'s'").value_type == "str"
    assert norm("a/b").value_type == "nset"
    assert norm("a | b").value_type == "nset"
    assert norm("1 = 2").value_type == "bool"
    assert norm("1 + 2").value_type == "num"
    assert norm("count(a)").value_type == "num"
    assert norm("true()").value_type == "bool"
    assert norm("concat('a','b')").value_type == "str"


# --- explicit conversions -------------------------------------------------------

def test_numeric_predicate_becomes_position_test():
    expr = norm("a[2]")
    predicate = expr.steps[0].predicates[0]
    assert isinstance(predicate, BinaryOp) and predicate.op == "="
    assert isinstance(predicate.left, FunctionCall) and predicate.left.name == "position"
    assert isinstance(predicate.right, NumberLiteral)


def test_last_predicate_becomes_position_test():
    expr = norm("a[last()]")
    predicate = expr.steps[0].predicates[0]
    assert unparse(predicate) == "position() = last()"


def test_path_predicate_wrapped_in_boolean():
    expr = norm("a[b]")
    predicate = expr.steps[0].predicates[0]
    assert isinstance(predicate, FunctionCall) and predicate.name == "boolean"
    assert predicate.value_type == "bool"


def test_string_predicate_wrapped_in_boolean():
    expr = norm("a['s']")
    predicate = expr.steps[0].predicates[0]
    assert predicate.name == "boolean"


def test_boolean_predicate_untouched():
    expr = norm("a[true()]")
    predicate = expr.steps[0].predicates[0]
    assert predicate.name == "true"


def test_and_or_operands_get_boolean():
    expr = norm("a and 1")
    assert expr.left.name == "boolean"
    assert expr.right.name == "boolean"
    both = norm("true() or false()")
    assert both.left.name == "true"  # already boolean: no wrapper


def test_arithmetic_operands_get_number():
    expr = norm("'3' + a")
    assert expr.left.name == "number"
    assert expr.right.name == "number"
    assert expr.right.args[0].value_type == "nset"


def test_negate_operand_converted():
    expr = norm("-'3'")
    assert expr.operand.name == "number"


def test_comparisons_not_converted():
    expr = norm("a = 1")
    assert expr.left.value_type == "nset"
    assert expr.right.value_type == "num"


def test_function_argument_conversions():
    expr = norm("starts-with(a, 1)")
    assert expr.args[0].name == "string"
    assert expr.args[1].name == "string"


def test_context_defaulting_functions_get_self_path():
    expr = norm("string()")
    (arg,) = expr.args
    assert isinstance(arg, Path)
    assert arg.steps[0].axis == "self"
    lengths = norm("string-length()")
    assert lengths.args[0].name == "string"  # string(self::node())


def test_nset_argument_required():
    with pytest.raises(XPathTypeError):
        norm("count(1)")
    with pytest.raises(XPathTypeError):
        norm("sum('x')")


def test_union_requires_node_sets():
    with pytest.raises(XPathTypeError):
        norm("a | 1")


# --- id rewrite (Section 4) -----------------------------------------------------

def test_id_of_path_becomes_id_step():
    expr = norm("id(a/b)")
    assert isinstance(expr, Path)
    assert [s.axis for s in expr.steps] == ["child", "child", "id"]


def test_nested_id_chain():
    expr = norm("id(id(a))")
    assert [s.axis for s in expr.steps] == ["child", "id", "id"]


def test_id_of_scalar_stays_function():
    expr = norm("id('k')")
    assert isinstance(expr, FunctionCall) and expr.name == "id"
    assert expr.value_type == "nset"


def test_id_of_union_roots_path_at_primary():
    expr = norm("id(a | b)")
    assert isinstance(expr, Path)
    assert expr.primary is not None
    assert [s.axis for s in expr.steps] == ["id"]


# --- union lifting ----------------------------------------------------------------

def test_boolean_union_lifted_to_or():
    expr = norm("a[b | c]")
    predicate = expr.steps[0].predicates[0]
    assert isinstance(predicate, BinaryOp) and predicate.op == "or"
    assert predicate.left.name == "boolean"
    assert predicate.right.name == "boolean"


def test_comparison_union_lifted_to_or():
    expr = norm("(a | b) = 1")
    assert isinstance(expr, BinaryOp) and expr.op == "or"
    assert expr.left.op == "="
    assert expr.right.op == "="


def test_lifting_is_recursive():
    expr = norm("a[b | c | d]")
    predicate = expr.steps[0].predicates[0]
    # ((b|c)|d) lifts to (bool(b) or bool(c)) or bool(d).
    assert predicate.op == "or"
    assert predicate.left.op == "or"


def test_lifted_clone_gets_fresh_uids():
    expr = norm("(a | b) = count(c)")
    left_scalar = expr.left.right
    right_scalar = expr.right.right
    assert left_scalar.uid != right_scalar.uid


# --- variables ------------------------------------------------------------------

def test_variable_substitution_scalars():
    assert isinstance(norm("$x", {"x": 5}), NumberLiteral)
    assert isinstance(norm("$x", {"x": "s"}), StringLiteral)
    assert norm("$x", {"x": True}).name == "true"
    assert norm("$x", {"x": False}).name == "false"


def test_variable_substitution_node_set():
    expr = norm("$x", {"x": []})
    assert isinstance(expr, ConstantNodeSet)
    assert expr.value_type == "nset"


def test_unbound_variable_rejected():
    with pytest.raises(UnboundVariableError):
        norm("$nope")


def test_unsupported_binding_type_rejected():
    with pytest.raises(XPathTypeError):
        norm("$x", {"x": object()})


def test_variable_inside_expression():
    expr = norm("a[position() = $n]", {"n": 2})
    predicate = expr.steps[0].predicates[0]
    assert isinstance(predicate.right, NumberLiteral)
    assert predicate.right.value == 2.0
