"""The vector column-program tier (PR 9): byte identity and exact counters.

The contract under test: compiling a Core XPath sweep to a
:class:`repro.axes.vec.VectorProgram` and running it batch-at-a-time —
on the stdlib executor or the optional numpy executor — returns the
*same bytes* as the scalar kernels and the Definition-1 scans, on eager
and lazy documents alike, and the ``vector_program_runs``/``vector_ops``
counters move deterministically per (document, query, mode), never per
backend.

The differential loop reuses the Core XPath fuzz grammar
(:func:`repro.workloads.queries.random_core_query`) with a fixed seed,
crossing every kernel mode with every available executor.
"""

import random

import pytest

from repro import stats
from repro.axes import (
    FORWARD_VECTOR_AXES,
    INVERSE_VECTOR_AXES,
    VECTOR_BACKENDS,
    VECTOR_MIN_BLOCK,
    compile_backward_steps,
    compile_forward_steps,
    kernel_mode_forced,
    numpy_available,
    set_vector_backend,
    sweep_engaged,
    vector_backend,
    vector_backend_forced,
)
from repro.engine import XPathEngine
from repro.workloads.documents import (
    book_catalog,
    random_document,
    running_example_document,
    wide_tree,
)
from repro.workloads.queries import random_core_query
from repro.xml.parser import parse_document
from repro.xml.snapshot import decode_snapshot, encode_snapshot
from repro.xpath.parser import parse_xpath

SEED = 20030612


def _backends():
    names = ["stdlib"]
    if numpy_available():
        names.append("numpy")
    return names


def _fuzz_documents():
    rng = random.Random(SEED)
    return [
        running_example_document(),
        wide_tree(width=6),
        book_catalog(books=8, chapters_per_book=3),
        parse_document(
            '<a id="1">x<b id="2"><a id="3">100</a>y</b>'
            '<c id="4" kind="k"><b id="5">1</b><b id="6">2</b><b id="7">2</b></c>'
            '<!--comment--><d id="8"/></a>'
        ),
        random_document(rng, max_nodes=30),
        random_document(rng, max_nodes=60),
    ]


# ----------------------------------------------------------------------
# Differential fuzz: vector == scalar == scan, every mode x executor
# ----------------------------------------------------------------------


def test_vector_matches_scalar_and_scan_on_fuzz_corpus():
    rng = random.Random(SEED)
    cases = 0
    for document in _fuzz_documents():
        engine = XPathEngine(document)
        for _ in range(15):
            query = random_core_query(rng)
            compiled = engine.compile(query)
            with kernel_mode_forced("scan"):
                baseline = engine.evaluate(compiled, algorithm="corexpath")
            for mode in ("indexed", "auto"):
                with kernel_mode_forced(mode):
                    got = engine.evaluate(compiled, algorithm="corexpath")
                assert got == baseline, f"{mode} diverged on {query!r}"
            for backend in _backends():
                with kernel_mode_forced("vector"), vector_backend_forced(backend):
                    got = engine.evaluate(compiled, algorithm="corexpath")
                assert got == baseline, f"vector/{backend} diverged on {query!r}"
            cases += 1
    assert cases == 15 * len(_fuzz_documents())


def test_vector_matches_on_lazy_documents():
    """The programs run over lazy column documents without forcing full
    materialization semantics to differ — same bytes as eager."""
    rng = random.Random(SEED + 7)
    for eager in (running_example_document(), book_catalog(books=10)):
        lazy = decode_snapshot(encode_snapshot(eager), lazy=True)
        eager_engine = XPathEngine(eager)
        lazy_engine = XPathEngine(lazy)
        for _ in range(10):
            query = random_core_query(rng)
            with kernel_mode_forced("scan"):
                baseline = eager_engine.evaluate(query, algorithm="corexpath")
            for backend in _backends():
                with kernel_mode_forced("vector"), vector_backend_forced(backend):
                    got = lazy_engine.evaluate(query, algorithm="corexpath")
                pres = [node.pre for node in got]
                assert pres == [node.pre for node in baseline], (
                    f"vector/{backend} on lazy doc diverged on {query!r}"
                )


def test_backward_predicate_programs_match_scalar():
    """Predicate existence sweeps (the backward direction) through the
    program executor agree with the scalar propagation on shapes that
    exercise filter + inverse ops and delegated axes."""
    document = book_catalog(books=12, chapters_per_book=4)
    engine = XPathEngine(document)
    queries = [
        "/descendant::*[child::*]",
        "/descendant::*[child::node()]",
        "/descendant::node()[ancestor::chapter]",
        "/descendant::book[descendant::ref]",
        "/descendant::*[not(child::*)]",
        "/descendant::chapter[following-sibling::chapter]",
        "/descendant::*[attribute::id]",
        "/descendant::*[child::*[child::node()]]",
    ]
    for query in queries:
        with kernel_mode_forced("scan"):
            baseline = engine.evaluate(query, algorithm="corexpath")
        for backend in _backends():
            with kernel_mode_forced("vector"), vector_backend_forced(backend):
                assert engine.evaluate(query, algorithm="corexpath") == baseline


# ----------------------------------------------------------------------
# Program compilation
# ----------------------------------------------------------------------


def test_forward_program_shape():
    path = parse_xpath("/descendant::a/child::b[child::c]/following-sibling::d")
    program = compile_forward_steps(path.steps)
    assert program.direction == "forward"
    axes = [step.axis for step in program.steps]
    assert axes == ["descendant", "child", "following-sibling"]
    assert [step.vector for step in program.steps] == [True, True, False]
    assert [len(step.predicates) for step in program.steps] == [0, 1, 0]


def test_backward_program_reverses_steps():
    path = parse_xpath("/descendant::a/child::b")
    program = compile_backward_steps(path.steps)
    assert program.direction == "backward"
    # Backward propagation peels the last step first.
    assert [step.axis for step in program.steps] == ["child", "descendant"]
    # Inverse vectorizability is judged against the *inverse* axis set:
    # descendant inverts to an interval emit, child to a parent gather.
    assert all(step.vector for step in program.steps)


def test_vector_axis_sets_are_the_documented_tiers():
    assert "child" in FORWARD_VECTOR_AXES
    assert "attribute" in FORWARD_VECTOR_AXES
    assert "descendant" in FORWARD_VECTOR_AXES
    assert "following-sibling" not in FORWARD_VECTOR_AXES
    assert "descendant" in INVERSE_VECTOR_AXES
    assert "ancestor" in INVERSE_VECTOR_AXES
    assert "following-sibling" not in INVERSE_VECTOR_AXES


def test_sweep_engagement_thresholds():
    big = book_catalog(books=10)
    tiny = parse_document("<a><b/></a>")
    assert len(tiny.nodes) < VECTOR_MIN_BLOCK <= len(big.nodes)
    with kernel_mode_forced("auto"):
        assert sweep_engaged(big)
        assert not sweep_engaged(tiny)
    with kernel_mode_forced("vector"):
        assert sweep_engaged(big)
        assert sweep_engaged(tiny)  # forced mode engages regardless
    with kernel_mode_forced("indexed"):
        assert not sweep_engaged(big)
    with kernel_mode_forced("scan"):
        assert not sweep_engaged(big)


# ----------------------------------------------------------------------
# Counters: exact, deterministic, backend-independent
# ----------------------------------------------------------------------

#: (query, program runs, vector ops) for ONE forced-vector evaluation.
#: Forward: one op per vectorizable step; delegated steps (siblings)
#: count the run but no op. Each predicate adds one backward program
#: whose step ticks a filter op plus an inverse op.
COUNTER_CASES = (
    ("/descendant::chapter", 1, 1),
    ("/descendant::*/child::node()", 1, 2),
    ("/descendant::*/attribute::node()", 1, 2),
    ("/descendant::*[child::*]", 2, 3),
    ("/descendant::book/following-sibling::book", 1, 1),
)


def _evaluate_delta(engine, compiled):
    before = stats.axis_kernel_stats.snapshot()
    engine.evaluate(compiled, algorithm="corexpath")
    after = stats.axis_kernel_stats.snapshot()
    return (
        after["vector_program_runs"] - before["vector_program_runs"],
        after["vector_ops"] - before["vector_ops"],
    )


@pytest.mark.parametrize("query,want_runs,want_ops", COUNTER_CASES)
def test_vector_counters_are_exact_per_evaluation(query, want_runs, want_ops):
    engine = XPathEngine(book_catalog(books=20))
    compiled = engine.compile(query)
    for backend in _backends():
        with kernel_mode_forced("vector"), vector_backend_forced(backend):
            assert _evaluate_delta(engine, compiled) == (want_runs, want_ops), (
                f"counter shape drifted on {query!r} [{backend}]"
            )


def test_vector_counters_do_not_move_outside_vector_dispatch():
    engine = XPathEngine(book_catalog(books=20))
    compiled = engine.compile("/descendant::*/child::node()")
    for mode in ("indexed", "scan"):
        with kernel_mode_forced(mode):
            assert _evaluate_delta(engine, compiled) == (0, 0)
    # Auto dispatch on a sub-threshold document stays scalar too.
    tiny_engine = XPathEngine(parse_document("<a><b/><b/></a>"))
    tiny_compiled = tiny_engine.compile("/descendant::b")
    with kernel_mode_forced("auto"):
        assert _evaluate_delta(tiny_engine, tiny_compiled) == (0, 0)


def test_auto_dispatch_engages_vector_tier_on_wide_documents():
    engine = XPathEngine(book_catalog(books=20))
    compiled = engine.compile("/descendant::*/child::node()")
    with kernel_mode_forced("auto"):
        runs, ops = _evaluate_delta(engine, compiled)
    assert runs == 1
    assert ops >= 1  # per-op engagement depends on block widths, not mode


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


def test_backend_selection_api():
    assert vector_backend() in VECTOR_BACKENDS
    with pytest.raises(ValueError):
        set_vector_backend("gpu")
    previous = vector_backend()
    with vector_backend_forced("stdlib"):
        assert vector_backend() == "stdlib"
    assert vector_backend() == previous


def test_numpy_backend_requires_numpy():
    if numpy_available():
        with vector_backend_forced("numpy"):
            assert vector_backend() == "numpy"
    else:
        with pytest.raises(RuntimeError):
            set_vector_backend("numpy")


def test_stdlib_backend_is_first_class_without_numpy():
    """The stdlib executor must produce full results with numpy entirely
    out of the picture — the no-numpy CI leg runs this whole module, but
    this case also pins the guarded-import contract directly."""
    from repro.axes import vec_np

    assert vec_np.available() == numpy_available()
    if not numpy_available():
        assert vec_np.make_backend(None) is None
    document = book_catalog(books=10)
    engine = XPathEngine(document)
    with kernel_mode_forced("scan"):
        baseline = engine.evaluate("/descendant::*/child::*", algorithm="corexpath")
    with kernel_mode_forced("vector"), vector_backend_forced("stdlib"):
        assert (
            engine.evaluate("/descendant::*/child::*", algorithm="corexpath")
            == baseline
        )
