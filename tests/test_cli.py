"""Tests for the command-line tool."""

import pytest

from repro.cli import main


XML = '<a id="1"><b id="2">10</b><b id="3">20</b></a>'


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_basic_query_paths(capsys):
    code, out, err = run(capsys, "//b", "--xml", XML)
    assert code == 0
    assert out.splitlines() == ["/a[1]/b[1]", "/a[1]/b[2]"]


def test_output_xml(capsys):
    code, out, _ = run(capsys, "//b[1]", "--xml", XML, "--output", "xml")
    assert code == 0
    assert out.strip() == '<b id="2">10</b>'


def test_output_value(capsys):
    code, out, _ = run(capsys, "//b", "--xml", XML, "--output", "value")
    assert out.splitlines() == ["10", "20"]


def test_scalar_result(capsys):
    code, out, _ = run(capsys, "count(//b)", "--xml", XML)
    assert code == 0
    assert out.strip() == "2.0"


def test_boolean_result_rendering(capsys):
    _, out, _ = run(capsys, "boolean(//b)", "--xml", XML)
    assert out.strip() == "true"


def test_empty_node_set_message(capsys):
    _, out, _ = run(capsys, "//missing", "--xml", XML)
    assert "(empty node-set)" in out


def test_algorithm_flag(capsys):
    code, out, _ = run(capsys, "//b", "--xml", XML, "--algorithm", "mincontext")
    assert code == 0
    assert len(out.splitlines()) == 2


def test_explain_output(capsys):
    code, out, _ = run(capsys, "//b[position() = 1]", "--xml", XML, "--explain")
    assert code == 0
    assert "Core XPath:" in out
    assert "Extended Wadler:" in out
    assert "parse tree:" in out
    assert "optmincontext" in out


def test_compare_agreement(capsys):
    code, out, err = run(capsys, "//b[. > 15]", "--xml", XML, "--compare")
    assert code == 0
    assert "AGREE" in err
    assert out.count("---") >= 6  # at least three algorithm sections


def test_file_input(tmp_path, capsys):
    path = tmp_path / "doc.xml"
    path.write_text(XML, encoding="utf-8")
    code, out, _ = run(capsys, "//b", "--file", str(path))
    assert code == 0
    assert len(out.splitlines()) == 2


def test_strip_whitespace_flag(capsys):
    source = "<a>\n  <b>x</b>\n</a>"
    _, out, _ = run(capsys, "count(/a/text())", "--xml", source)
    assert out.strip() == "2.0"
    _, out, _ = run(capsys, "count(/a/text())", "--xml", source, "--strip-whitespace")
    assert out.strip() == "0.0"


def test_error_reporting(capsys):
    code, _, err = run(capsys, "//b[", "--xml", XML)
    assert code == 1
    assert "error:" in err
    code, _, err = run(capsys, "//b", "--xml", "<a><unclosed>")
    assert code == 1
    assert "error:" in err


def test_optimize_flag(capsys):
    code, out, _ = run(capsys, "//b[1 = 1]", "--xml", XML, "--optimize", "--explain")
    assert code == 0
    assert "rewrites applied:" in out
    assert "evaluation plan" in out


def test_explain_shows_plan_strategies(capsys):
    _, out, _ = run(capsys, "//b[. = 10]", "--xml", XML, "--explain")
    assert "bottom-up" in out
    assert "outermost-set" in out
