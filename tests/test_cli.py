"""Tests for the command-line tool."""

import pytest

from repro.cli import main


XML = '<a id="1"><b id="2">10</b><b id="3">20</b></a>'


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_basic_query_paths(capsys):
    code, out, err = run(capsys, "//b", "--xml", XML)
    assert code == 0
    assert out.splitlines() == ["/a[1]/b[1]", "/a[1]/b[2]"]


def test_output_xml(capsys):
    code, out, _ = run(capsys, "//b[1]", "--xml", XML, "--output", "xml")
    assert code == 0
    assert out.strip() == '<b id="2">10</b>'


def test_output_value(capsys):
    code, out, _ = run(capsys, "//b", "--xml", XML, "--output", "value")
    assert out.splitlines() == ["10", "20"]


def test_scalar_result(capsys):
    code, out, _ = run(capsys, "count(//b)", "--xml", XML)
    assert code == 0
    assert out.strip() == "2.0"


def test_boolean_result_rendering(capsys):
    _, out, _ = run(capsys, "boolean(//b)", "--xml", XML)
    assert out.strip() == "true"


def test_empty_node_set_message(capsys):
    _, out, _ = run(capsys, "//missing", "--xml", XML)
    assert "(empty node-set)" in out


def test_algorithm_flag(capsys):
    code, out, _ = run(capsys, "//b", "--xml", XML, "--algorithm", "mincontext")
    assert code == 0
    assert len(out.splitlines()) == 2


def test_explain_output(capsys):
    code, out, _ = run(capsys, "//b[position() = 1]", "--xml", XML, "--explain")
    assert code == 0
    assert "Core XPath:" in out
    assert "Extended Wadler:" in out
    assert "parse tree:" in out
    assert "optmincontext" in out


def test_compare_agreement(capsys):
    code, out, err = run(capsys, "//b[. > 15]", "--xml", XML, "--compare")
    assert code == 0
    assert "AGREE" in err
    assert out.count("---") >= 6  # at least three algorithm sections


def test_file_input(tmp_path, capsys):
    path = tmp_path / "doc.xml"
    path.write_text(XML, encoding="utf-8")
    code, out, _ = run(capsys, "//b", "--file", str(path))
    assert code == 0
    assert len(out.splitlines()) == 2


def test_strip_whitespace_flag(capsys):
    source = "<a>\n  <b>x</b>\n</a>"
    _, out, _ = run(capsys, "count(/a/text())", "--xml", source)
    assert out.strip() == "2.0"
    _, out, _ = run(capsys, "count(/a/text())", "--xml", source, "--strip-whitespace")
    assert out.strip() == "0.0"


def test_error_reporting(capsys):
    code, _, err = run(capsys, "//b[", "--xml", XML)
    assert code == 3  # EXIT_QUERY: unparsable query
    assert "error:" in err
    code, _, err = run(capsys, "//b", "--xml", "<a><unclosed>")
    assert code == 4  # EXIT_DOCUMENT: malformed XML
    assert "error:" in err


def test_optimize_flag(capsys):
    code, out, _ = run(capsys, "//b[1 = 1]", "--xml", XML, "--optimize", "--explain")
    assert code == 0
    assert "rewrites applied:" in out
    assert "evaluation plan" in out


def test_explain_shows_plan_strategies(capsys):
    _, out, _ = run(capsys, "//b[. = 10]", "--xml", XML, "--explain")
    assert "bottom-up" in out
    assert "outermost-set" in out


# ----------------------------------------------------------------------
# plan subcommand
# ----------------------------------------------------------------------


def test_plan_subcommand_core_query(capsys):
    code, out, _ = run(capsys, "plan", "//b")
    assert code == 0
    assert "normalized query:" in out
    assert "Core XPath:       yes" in out
    assert "algorithm:        corexpath" in out


def test_plan_subcommand_full_xpath_query(capsys):
    code, out, _ = run(capsys, "plan", "//b[position() = last()]")
    assert code == 0
    assert "Core XPath:       no" in out
    assert "algorithm:        optmincontext" in out


def test_plan_subcommand_tree_flag(capsys):
    code, out, _ = run(capsys, "plan", "//b[. = 10]", "--tree")
    assert code == 0
    assert "parse tree:" in out
    assert "evaluation plan" in out


def test_plan_subcommand_optimize_flag(capsys):
    code, out, _ = run(capsys, "plan", "//b[1 = 1]", "--optimize")
    assert code == 0
    assert "rewrites applied:" in out


def test_plan_subcommand_malformed_query_exit_code(capsys):
    code, _, err = run(capsys, "plan", "//b[")
    assert code == 3  # EXIT_QUERY
    assert "error:" in err


def test_plan_subcommand_unbound_variable_exit_code(capsys):
    code, _, err = run(capsys, "plan", "//b[. > $nope]")
    assert code == 3  # EXIT_QUERY: unbound variables are query errors
    assert "error:" in err


def test_query_literally_named_plan_stays_reachable(capsys):
    """'plan' dispatches to the subcommand only in first position; leading
    with an option keeps it usable as a plain query."""
    code, out, _ = run(capsys, "--xml", "<plan id='1'><x/></plan>", "plan")
    assert code == 0
    assert out.strip() == "/plan[1]"


# ----------------------------------------------------------------------
# batch subcommand
# ----------------------------------------------------------------------


def test_batch_subcommand_multiple_queries_and_documents(capsys):
    code, out, _ = run(
        capsys,
        "batch",
        "--xml", XML,
        "--xml", "<a><b>30</b></a>",
        "-q", "//b",
        "-q", "count(//b)",
    )
    assert code == 0
    assert out.count("=== ") == 4  # 2 docs x 2 queries, one header each
    assert "[corexpath]" in out
    assert "2.0" in out and "1.0" in out


def test_batch_subcommand_stats_output(capsys):
    code, out, err = run(
        capsys,
        "batch",
        "--xml", XML,
        "-q", "//b",
        "-q", "//b",          # duplicate: one plan-cache + one result-cache hit
        "--stats",
    )
    assert code == 0
    assert "plan cache:" in err
    assert "hits=1" in err
    assert "hit rate=50.0%" in err
    assert "result cache:" in err
    assert "axis kernels:" in err
    assert "index builds=" in err
    assert "fallback scans=" in err


def test_batch_subcommand_queries_file(tmp_path, capsys):
    queries = tmp_path / "queries.txt"
    queries.write_text("//b\n\n# a comment\ncount(//b)\n", encoding="utf-8")
    code, out, _ = run(
        capsys, "batch", "--xml", XML, "--queries-file", str(queries)
    )
    assert code == 0
    assert out.count("=== ") == 2  # two queries ran, the comment was skipped


def test_batch_subcommand_file_documents(tmp_path, capsys):
    path = tmp_path / "doc.xml"
    path.write_text(XML, encoding="utf-8")
    code, out, _ = run(capsys, "batch", "--file", str(path), "-q", "//b")
    assert code == 0
    assert str(path) in out


def test_batch_subcommand_malformed_query_exit_code(capsys):
    code, _, err = run(capsys, "batch", "--xml", XML, "-q", "//b[")
    assert code == 3  # EXIT_QUERY
    assert "error:" in err


def test_batch_subcommand_unparsable_query_mid_list_names_the_query(capsys):
    """A bad query after good ones fails with one line naming it, before
    any evaluation output is produced."""
    code, out, err = run(
        capsys, "batch", "--xml", XML, "-q", "//b", "-q", "//b[", "-q", "//a"
    )
    assert code == 3
    assert "'//b['" in err
    assert len(err.strip().splitlines()) == 1
    assert out == ""  # nothing evaluated or printed


def test_batch_subcommand_malformed_document_exit_code(capsys):
    code, _, err = run(capsys, "batch", "--xml", "<a><unclosed>", "-q", "//b")
    assert code == 4  # EXIT_DOCUMENT
    assert "error:" in err
    assert "xml[0]" in err  # names the offending document


def test_batch_subcommand_missing_queries_exit_code(capsys):
    code, _, err = run(capsys, "batch", "--xml", XML)
    assert code == 2
    assert "no queries" in err


def test_batch_subcommand_missing_documents_exit_code(capsys):
    code, _, err = run(capsys, "batch", "-q", "//b")
    assert code == 2
    assert "no documents" in err


def test_batch_subcommand_invalid_plan_capacity_exit_code(capsys):
    code, _, err = run(capsys, "batch", "--xml", XML, "-q", "//b", "--plan-capacity", "0")
    assert code == 2
    assert "--plan-capacity" in err


def test_batch_subcommand_forced_algorithm(capsys):
    code, out, _ = run(
        capsys, "batch", "--xml", XML, "-q", "//b", "-a", "mincontext"
    )
    assert code == 0
    assert "[mincontext]" in out


def test_batch_subcommand_fragment_violation_exit_code(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "-q", "//b[position() = 1]", "-a", "corexpath"
    )
    assert code == 5  # EXIT_FRAGMENT
    assert "Core XPath" in err


def test_batch_subcommand_unbound_variable_exit_code(capsys):
    code, _, err = run(capsys, "batch", "--xml", XML, "-q", "//b[. > $nope]")
    assert code == 3  # EXIT_QUERY: unbound variables are query errors
    assert "$nope" in err


# ----------------------------------------------------------------------
# batch subcommand: sharded execution
# ----------------------------------------------------------------------


def test_batch_subcommand_workers_thread_backend(capsys):
    sequential = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "-q", "count(//b)",
    )
    sharded = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "-q", "count(//b)", "--workers", "2",
    )
    assert sharded[0] == 0
    assert sharded[1] == sequential[1]  # identical output, batch order kept


def test_batch_subcommand_workers_stats_reports_shards(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "--workers", "2", "--shard-by", "size-balanced", "--stats",
    )
    assert code == 0
    assert "shards:       2" in err
    assert "strategy=size-balanced" in err
    assert "plan cache:" in err


def test_batch_subcommand_invalid_workers_exit_code(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "-q", "//b", "--workers", "0"
    )
    assert code == 2
    assert "--workers" in err


# ----------------------------------------------------------------------
# batch subcommand: async backend and streaming
# ----------------------------------------------------------------------


def test_batch_subcommand_async_backend_matches_sequential(capsys):
    sequential = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "-q", "count(//b)",
    )
    asynchronous = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "-q", "count(//b)", "--workers", "2", "--backend", "async",
    )
    assert asynchronous[0] == 0
    assert asynchronous[1] == sequential[1]  # identical output, batch order kept


def test_batch_subcommand_stream_prints_every_labeled_result(capsys):
    """--stream output arrives in completion order, so compare as a set
    of labeled blocks against the barrier run's."""
    barrier = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "-q", "count(//b)",
    )
    streamed = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "-q", "count(//b)", "--workers", "2", "--backend", "async", "--stream",
    )
    assert streamed[0] == 0

    def blocks(output):
        chunks = ("=== " + part for part in output.split("=== ") if part)
        return {chunk.strip() for chunk in chunks}

    assert blocks(streamed[1]) == blocks(barrier[1])
    assert len(blocks(streamed[1])) == 4  # 2 documents x 2 queries


def test_batch_subcommand_stream_stats_report_shards(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>", "-q", "//b",
        "--workers", "2", "--backend", "async", "--stream", "--stats",
    )
    assert code == 0
    assert "shards:       2" in err
    assert "backend=async --stream" in err
    assert "plan cache:" in err
    assert "result cache:" in err


def test_batch_subcommand_stream_requires_async_backend(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "-q", "//b", "--workers", "2", "--stream"
    )
    assert code == 2
    assert "--stream requires --backend async" in err


def test_batch_subcommand_stream_bad_query_exit_code(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "-q", "//b[", "--workers", "2",
        "--backend", "async", "--stream",
    )
    assert code == 3  # EXIT_QUERY: surfaced at prepare time, before streaming
    assert "//b[" in err


# ----------------------------------------------------------------------
# store subcommand and batch --snapshot-store
# ----------------------------------------------------------------------


def test_store_snapshot_then_batch_from_store(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    code, out, _ = run(
        capsys, "store", "snapshot", "--store", str(store),
        "--name", "doc", "--xml", XML,
    )
    assert code == 0
    assert "doc:" in out and "nodes" in out
    assert store.exists()
    code, out, _ = run(
        capsys, "batch", "--snapshot-store", str(store), "-q", "//b",
    )
    assert code == 0
    assert "=== store:doc :: //b" in out
    assert "/a[1]/b[1]" in out and "/a[1]/b[2]" in out


def test_store_snapshot_matches_direct_parse_answers(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "d", "--xml", XML)
    _, direct, _ = run(capsys, "count(//b)", "--xml", XML)
    _, snapped, _ = run(
        capsys, "batch", "--snapshot-store", str(store), "-q", "count(//b)",
    )
    assert direct.strip() in snapped


def test_store_list_shows_catalog(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "one", "--xml", XML)
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "two", "--xml", "<r/>")
    code, out, _ = run(capsys, "store", "list", "--store", str(store))
    assert code == 0
    lines = out.splitlines()
    assert [line.split("\t")[:2] for line in lines] == [
        ["one", "snapshot v2"],
        ["two", "snapshot v2"],
    ]
    # Per-document sizes: what lazy loading keeps resident vs the disk blob.
    for line in lines:
        assert "nodes=" in line and "disk=" in line and "columns=" in line
    assert "nodes=2" in lines[1]  # <r/> is a document node plus one element


def test_store_migrate_reports_converted_entries(tmp_path, capsys):
    import json

    store = tmp_path / "catalog.json"
    rows = [["D", None, None, -1], ["E", "a", None, 0]]
    store.write_text(json.dumps(
        {"version": 1, "id_attribute": "id", "documents": {"old": {"nodes": rows}}}
    ))
    code, out, _ = run(capsys, "store", "migrate", "--store", str(store))
    assert code == 0
    assert "migrated: old" in out
    assert "1 document(s) migrated" in out
    code, out, _ = run(capsys, "store", "list", "--store", str(store))
    (line,) = out.splitlines()
    assert line.startswith("old\tsnapshot v2\tnodes=2\t")


def test_store_snapshot_requires_name_and_document(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    code, _, err = run(capsys, "store", "snapshot", "--store", str(store), "--xml", XML)
    assert code == 2
    assert "--name" in err
    code, _, err = run(capsys, "store", "snapshot", "--store", str(store), "--name", "d")
    assert code == 2
    assert "--xml or --file" in err


def test_store_snapshot_malformed_document_exit_code(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    code, _, err = run(
        capsys, "store", "snapshot", "--store", str(store),
        "--name", "bad", "--xml", "<a><b></a>",
    )
    assert code == 4  # EXIT_DOCUMENT
    assert "error:" in err
    assert not store.exists()


def test_batch_snapshot_store_doc_selects_named_documents(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "one", "--xml", XML)
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "two", "--xml", "<r/>")
    code, out, _ = run(
        capsys, "batch", "--snapshot-store", str(store), "--doc", "one",
        "-q", "count(//b)",
    )
    assert code == 0
    assert "store:one" in out
    assert "store:two" not in out


def test_batch_snapshot_store_missing_document_exit_code(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "one", "--xml", XML)
    code, _, err = run(
        capsys, "batch", "--snapshot-store", str(store), "--doc", "ghost", "-q", "//b",
    )
    assert code == 6  # DocumentStoreError -> EXIT_STORE
    assert "ghost" in err


def test_batch_doc_without_snapshot_store_is_usage_error(capsys):
    code, _, err = run(capsys, "batch", "--xml", XML, "--doc", "x", "-q", "//b")
    assert code == 2
    assert "--doc requires --snapshot-store" in err


def test_batch_snapshot_store_corrupt_sidecar_exit_code(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "doc", "--xml", XML)
    sidecar_dir = tmp_path / "catalog.json.d"
    (sidecar,) = sidecar_dir.iterdir()
    sidecar.write_bytes(b"garbage")
    code, _, err = run(capsys, "batch", "--snapshot-store", str(store), "-q", "//b")
    assert code == 6  # SnapshotCorruptError -> EXIT_STORE
    assert "error:" in err


def test_batch_snapshot_store_stats_count_adoptions(tmp_path, capsys):
    store = tmp_path / "catalog.json"
    run(capsys, "store", "snapshot", "--store", str(store), "--name", "doc", "--xml", XML)
    code, _, err = run(
        capsys, "batch", "--snapshot-store", str(store), "-q", "//b", "--stats",
    )
    assert code == 0
    assert "axis kernels:" in err
    assert "adoptions=" in err


def test_query_literally_named_store_stays_reachable(capsys):
    code, out, _ = run(capsys, "--xml", "<store><a/></store>", "store")
    assert code == 0
    assert out.strip() == "/store[1]"


# ----------------------------------------------------------------------
# Batch-shared step DAG: plan --explain-batch and batch --share/--no-share
# ----------------------------------------------------------------------


def test_plan_subcommand_explain_batch_prints_the_dag(capsys):
    code, out, _ = run(
        capsys, "plan", "--explain-batch", "//b/c", "//b/d", "count(//b)"
    )
    assert code == 0
    assert "batch plan: 3 plan(s), 2 sharable, 2 shared" in out
    assert "prefix[0]: /descendant-or-self::node()" in out
    assert "base=prefix[" in out
    assert "independent (not a sharable absolute location path)" in out


def test_plan_subcommand_explain_batch_single_query(capsys):
    code, out, _ = run(capsys, "plan", "--explain-batch", "//b")
    assert code == 0
    assert "batch plan: 1 plan(s)" in out
    assert "0 materialized prefix(es)" in out


def test_plan_subcommand_multiple_queries_require_explain_batch(capsys):
    code, _, err = run(capsys, "plan", "//b", "//c")
    assert code == 2
    assert "multiple queries require --explain-batch" in err


def test_plan_subcommand_explain_batch_names_the_bad_query(capsys):
    code, _, err = run(capsys, "plan", "--explain-batch", "//b", "//c[")
    assert code == 3
    assert "'//c['" in err


def test_batch_subcommand_stats_report_batch_plan(capsys):
    code, _, err = run(
        capsys,
        "batch",
        "--xml", XML,
        "-q", "//b/text()",
        "-q", "//b",
        "--stats",
    )
    assert code == 0
    assert "batch plan:" in err
    assert "prefixes=2" in err
    assert "shared plans=2/2" in err
    assert "steps saved=" in err


def test_batch_subcommand_no_share_matches_shared_output(capsys):
    shared = run(capsys, "batch", "--xml", XML, "-q", "//b", "-q", "//b/text()")
    unshared = run(
        capsys, "batch", "--xml", XML, "-q", "//b", "-q", "//b/text()",
        "--no-share",
    )
    assert unshared[0] == 0
    assert unshared[1] == shared[1]


def test_batch_subcommand_no_share_stats_omit_batch_plan(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "-q", "//b", "-q", "//b/text()",
        "--no-share", "--stats",
    )
    assert code == 0
    assert "batch plan:" not in err
    assert "plan cache:" in err


def test_batch_subcommand_forced_algorithm_stats_omit_batch_plan(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "-q", "//b", "-q", "//b/text()",
        "--algorithm", "mincontext", "--stats",
    )
    assert code == 0
    assert "batch plan:" not in err


def test_batch_subcommand_workers_stats_report_merged_batch_plan(capsys):
    code, _, err = run(
        capsys, "batch", "--xml", XML, "--xml", "<a><b>30</b></a>",
        "-q", "//b", "-q", "//b/text()", "--workers", "2", "--stats",
    )
    assert code == 0
    assert "shards:       2" in err
    assert "batch plan:" in err
