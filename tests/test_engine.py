"""Tests for the engine facade: compilation, dispatch, variables, errors."""

import pytest

from repro.engine import ALGORITHMS, XPathEngine
from repro.errors import (
    FragmentViolationError,
    ReproError,
    UnboundVariableError,
    UnknownAlgorithmError,
    XPathSyntaxError,
)
from repro.xml.document import Document
from repro.xml.parser import parse_document


@pytest.fixture()
def engine():
    return XPathEngine(parse_document('<a id="1"><b id="2">10</b><b id="3">20</b></a>'))


def test_compile_exposes_analysis(engine):
    compiled = engine.compile("//b[position() = 1]")
    assert compiled.result_type == "nset"
    assert not compiled.is_core_xpath
    assert compiled.is_extended_wadler
    assert compiled.best_algorithm() == "optmincontext"


def test_compile_core_query_dispatches_to_corexpath(engine):
    compiled = engine.compile("/a/b")
    assert compiled.is_core_xpath
    assert compiled.best_algorithm() == "corexpath"
    assert [n.xml_id for n in engine.evaluate("/a/b")] == ["2", "3"]


def test_compile_caches(engine):
    first = engine.compile("//b")
    second = engine.compile("//b")
    assert first is second


def test_corexpath_rejected_outside_fragment(engine):
    with pytest.raises(FragmentViolationError):
        engine.evaluate("//b[1]", algorithm="corexpath")


def test_unknown_algorithm_rejected(engine):
    with pytest.raises(ValueError):
        engine.evaluate("//b", algorithm="quantum")


def test_unknown_algorithm_raises_typed_repro_error(engine):
    """Regression: unknown algorithm names must raise a single typed
    ReproError subclass, not a bare ValueError — so `except ReproError`
    callers (the CLI) report it instead of crashing."""
    with pytest.raises(UnknownAlgorithmError) as excinfo:
        engine.evaluate("//b", algorithm="quantum")
    assert isinstance(excinfo.value, ReproError)
    assert excinfo.value.algorithm == "quantum"
    assert excinfo.value.choices == ALGORITHMS
    assert "quantum" in str(excinfo.value)


def test_unknown_algorithm_error_survives_pickling(engine):
    """Worker pools re-raise exceptions across process boundaries."""
    import pickle

    with pytest.raises(UnknownAlgorithmError) as excinfo:
        engine.evaluate("//b", algorithm="quantum")
    roundtripped = pickle.loads(pickle.dumps(excinfo.value))
    assert roundtripped.algorithm == "quantum"
    assert roundtripped.choices == ALGORITHMS
    assert str(roundtripped) == str(excinfo.value)


def test_all_declared_algorithms_run(engine):
    for algorithm in ALGORITHMS:
        if algorithm == "corexpath":
            result = engine.evaluate("/a/b", algorithm=algorithm)
        else:
            result = engine.evaluate("/a/b", algorithm=algorithm)
        assert [n.xml_id for n in result] == ["2", "3"], algorithm


def test_variables_flow_through(engine):
    engine_with_vars = XPathEngine(engine.document, variables={"limit": 15})
    got = engine_with_vars.evaluate("//b[. > $limit]")
    assert [n.xml_id for n in got] == ["3"]


def test_unbound_variable_raises(engine):
    with pytest.raises(UnboundVariableError):
        engine.evaluate("//b[. > $nope]")


def test_syntax_error_propagates(engine):
    with pytest.raises(XPathSyntaxError):
        engine.evaluate("//b[")


def test_unfinalized_document_rejected():
    with pytest.raises(ReproError):
        XPathEngine(Document())


def test_default_context_is_document_root(engine):
    relative = engine.evaluate("a/b")
    assert [n.xml_id for n in relative] == ["2", "3"]


def test_select_requires_node_set(engine):
    assert engine.select("//b")
    with pytest.raises(ReproError):
        engine.select("count(//b)")


def test_scalar_query_types(engine):
    assert engine.evaluate("count(//b)") == 2.0
    assert engine.evaluate("string(//b[2])") == "20"
    assert engine.evaluate("boolean(//b)") is True
    assert isinstance(engine.evaluate("count(//b)"), float)


def test_compiled_query_reuse_across_contexts(engine):
    compiled = engine.compile("following-sibling::b")
    b2 = engine.document.element_by_id("2")
    got = engine.evaluate(compiled, context_node=b2)
    assert [n.xml_id for n in got] == ["3"]
    b3 = engine.document.element_by_id("3")
    assert engine.evaluate(compiled, context_node=b3) == []


def test_invalid_context_position_rejected(engine):
    with pytest.raises(ValueError):
        engine.evaluate("position()", context_position=5, context_size=2)
