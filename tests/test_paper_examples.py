"""Reproduction of every worked example in the paper (DESIGN.md §4).

* EXP-F2  — the Figure 2 document structure;
* EXP-F4  — the Figure 4 context-value tables of the running example;
* EXP-F5  — the Figure 5 relevant-context-restricted tables (with the
            documented x24 typo corrected: Figure 4's own row ⟨x24,8,8⟩
            says ``self::* = 100`` is true at x24, strval(x24) = "100");
* EXP-E4  — Example 4's outermost node sets X and Y;
* EXP-E5  — Example 5's loop-restricted set X′;
* EXP-E9  — Example 9's OPTMINCONTEXT run, including the intermediate
            backward-propagation sets the paper spells out.
"""

import pytest

from repro.core.bottomup_paths import eval_bottomup_path, propagate_path_backwards
from repro.core.context import Context
from repro.core.mincontext import MinContextEvaluator
from repro.core.topdown import TopDownEvaluator
from repro.engine import XPathEngine
from repro.workloads.documents import running_example_document
from repro.workloads.queries import example9_query, running_example_query
from repro.xpath.fragments import find_bottomup_paths
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance


@pytest.fixture(scope="module")
def doc():
    return running_example_document()


@pytest.fixture(scope="module")
def engine(doc):
    return XPathEngine(doc)


def x(doc, number):
    """The paper's x_i notation."""
    node = doc.element_by_id(str(number))
    assert node is not None, f"x{number} missing"
    return node


def ids(nodes):
    return sorted(n.xml_id for n in nodes)


# --- EXP-F2: the document -------------------------------------------------------

def test_figure2_dom(doc):
    """dom = {x10, ..., x24} (the paper lists the nine elements)."""
    assert [e.xml_id for e in doc.elements()] == [
        "10", "11", "12", "13", "14", "21", "22", "23", "24",
    ]
    assert x(doc, 12).string_value == "21 22"
    assert x(doc, 24).string_value == "100"
    assert x(doc, 10).parent is doc.root


# --- EXP-F4/Figure 4: context-value tables of e ------------------------------------

QUERY_E = running_example_query()

#: Figure 4, table N2 (cn → result), nonempty rows.
FIGURE4_N2 = {
    "10": {"14", "21", "22", "23", "24"},
    "11": {"13", "14"},
    "21": {"23", "24"},
}

#: Figure 4, table N3 (cn, cp, cs → result) — all 14 rows.
FIGURE4_N3 = {
    ("11", 1, 8): False,
    ("12", 2, 8): False,
    ("13", 3, 8): False,
    ("14", 4, 8): True,
    ("21", 5, 8): True,
    ("22", 6, 8): True,
    ("23", 7, 8): True,
    ("24", 8, 8): True,
    ("12", 1, 3): False,
    ("13", 2, 3): True,
    ("14", 3, 3): True,
    ("22", 1, 3): False,
    ("23", 2, 3): True,
    ("24", 3, 3): True,
}

#: Figure 4, table N4 (position() > last()*0.5).
FIGURE4_N4 = {
    ("11", 1, 8): False,
    ("12", 2, 8): False,
    ("13", 3, 8): False,
    ("14", 4, 8): False,
    ("21", 5, 8): True,
    ("22", 6, 8): True,
    ("23", 7, 8): True,
    ("24", 8, 8): True,
    ("12", 1, 3): False,
    ("13", 2, 3): True,
    ("14", 3, 3): True,
    ("22", 1, 3): False,
    ("23", 2, 3): True,
    ("24", 3, 3): True,
}

#: Figure 4, table N5 (self::* = 100), keyed by (cn, cp, cs) like N3.
#: True exactly at x14 and x24 (strval "100") — including the row
#: ⟨x24, 8, 8⟩ the paper prints as "true" in Figure 4.
FIGURE4_N5_TRUE_NODES = {"14", "24"}


@pytest.fixture(scope="module")
def topdown_tables(doc):
    """Evaluate e with E↓ recording every context-value table."""
    ast = normalize(parse_xpath(QUERY_E))
    compute_relevance(ast)
    evaluator = TopDownEvaluator(doc)
    tables = evaluator.trace_tables(ast, Context(doc.root, 1, 1))
    return ast, tables


def test_figure4_final_result(engine):
    result = engine.evaluate(QUERY_E, algorithm="topdown")
    assert ids(result) == ["13", "14", "21", "22", "23", "24"]


def test_figure4_n2_rows(doc, engine):
    """Table N2: descendant::*[...] per context node."""
    for key, expected in FIGURE4_N2.items():
        got = engine.evaluate(
            "descendant::*[position() > last()*0.5 or self::* = 100]",
            context_node=x(doc, key),
            algorithm="topdown",
        )
        assert {n.xml_id for n in got} == expected, key
    # All other context nodes give the empty set.
    for key in ("12", "13", "14", "22", "23", "24"):
        got = engine.evaluate(
            "descendant::*[position() > last()*0.5 or self::* = 100]",
            context_node=x(doc, key),
            algorithm="topdown",
        )
        assert got == []


def _table_rows(ast, tables, node):
    rows = tables.get(node.uid, [])
    return {(c.node.xml_id, c.position, c.size): value for c, value in rows}


def test_figure4_n3_table(doc, topdown_tables):
    ast, tables = topdown_tables
    predicate = ast.steps[1].predicates[0]  # N3: the or-expression
    rows = _table_rows(ast, tables, predicate)
    expected = {k: v for k, v in FIGURE4_N3.items()}
    assert rows == expected


def test_figure4_n4_table(doc, topdown_tables):
    ast, tables = topdown_tables
    n4 = ast.steps[1].predicates[0].left
    rows = _table_rows(ast, tables, n4)
    assert rows == FIGURE4_N4


def test_figure4_n5_table(doc, topdown_tables):
    ast, tables = topdown_tables
    n5 = ast.steps[1].predicates[0].right
    rows = _table_rows(ast, tables, n5)
    assert set(rows) == set(FIGURE4_N3)  # same contexts as N3
    for (cn, _cp, _cs), value in rows.items():
        assert value is (cn in FIGURE4_N5_TRUE_NODES), cn


def test_figure4_n6_n7_tables(doc, topdown_tables):
    """N6 position() and N7 last()*0.5 values at the generated contexts."""
    ast, tables = topdown_tables
    n4 = ast.steps[1].predicates[0].left
    n6, n7 = n4.left, n4.right
    for (_, cp, _), value in _table_rows(ast, tables, n6).items():
        assert value == float(cp)
    for (_, _, cs), value in _table_rows(ast, tables, n7).items():
        assert value == cs * 0.5


# --- EXP-F5 / Example 3+5: MINCONTEXT's reduced tables ----------------------------------

def test_figure5_reduced_tables(doc):
    """MINCONTEXT stores N5/N8/N9 projected to their relevant context:
    N5 and N8 per context node (8 rows), N9 as a single row — and never
    materializes tables for the cp/cs-dependent nodes N3/N4/N6/N7."""
    ast = normalize(parse_xpath(QUERY_E))
    compute_relevance(ast)
    mc = MinContextEvaluator(doc)
    result = mc.evaluate(ast, Context(doc.root, 1, 1))
    assert ids(result) == ["13", "14", "21", "22", "23", "24"]

    predicate = ast.steps[1].predicates[0]
    n4, n5 = predicate.left, predicate.right
    n8, n9 = n5.left, n5.right

    # Figure 5's N5 table, with the x24 typo corrected: true at x14, x24.
    n5_rows = mc.tables[n5.uid]
    assert {key[0].xml_id: value for key, value in n5_rows.items()} == {
        "11": False, "12": False, "13": False, "14": True,
        "21": False, "22": False, "23": False, "24": True,
    }
    # Figure 5's N8 table: self::* maps every candidate to itself.
    n8_rows = mc.tables[n8.uid]
    for key, value in n8_rows.items():
        assert value == {key[0]}
    # Figure 5's N9 table: the constant 100, one row.
    assert mc.tables[n9.uid] == {(): 100.0}
    # No tables for position/size-dependent nodes (the cp/cs loop).
    assert predicate.uid not in mc.tables
    assert n4.uid not in mc.tables
    assert n4.left.uid not in mc.tables  # position()
    assert n4.right.uid not in mc.tables  # last()*0.5


# --- EXP-E4: outermost node sets ------------------------------------------------------

def test_example4_outermost_sets(doc):
    """X = {x10..x24} after /descendant::*, Y = the final six nodes."""
    ast = normalize(parse_xpath(QUERY_E))
    compute_relevance(ast)
    mc = MinContextEvaluator(doc)
    first = mc._eval_step_from_set(ast.steps[0], {doc.root})
    assert ids(first) == ["10", "11", "12", "13", "14", "21", "22", "23", "24"]
    second = mc._eval_step_from_set(ast.steps[1], first)
    assert ids(second) == ["13", "14", "21", "22", "23", "24"]


# --- EXP-E5: the (cp, cs) loop ---------------------------------------------------------

def test_example5_loop_context(doc, engine):
    """Example 5 spotlights the context ⟨x23, 7, 8⟩: the predicate holds
    there (position 7 > 8*0.5), so x23 enters X′."""
    result = engine.evaluate(QUERY_E, algorithm="mincontext")
    assert "23" in {n.xml_id for n in result}
    predicate_value = engine.evaluate(
        "position() > last()*0.5 or self::* = 100",
        context_node=x(doc, 23),
        context_position=7,
        context_size=8,
        algorithm="mincontext",
    )
    assert predicate_value is True


# --- EXP-E9: Example 9, OPTMINCONTEXT ----------------------------------------------------

QUERY_Q = example9_query()


def test_example9_final_result(engine):
    result = engine.evaluate(QUERY_Q, algorithm="optmincontext")
    assert ids(result) == ["11", "12", "13", "14", "22"]


def test_example9_rho_bottomup_table(doc):
    """ρ = preceding-sibling::*/preceding::* compared to 100: the paper
    computes Y = {x14, x24} → following → {x21..x24} → following-sibling
    → {x23, x24}; table(N8) is true exactly there."""
    ast = normalize(parse_xpath(QUERY_Q))
    compute_relevance(ast)
    mc = MinContextEvaluator(doc)
    paths = find_bottomup_paths(ast)
    rho_comparison = paths[0]
    eval_bottomup_path(mc, rho_comparison)
    rows = mc.tables[rho_comparison.uid]
    true_nodes = {key[0].xml_id for key, value in rows.items() if value}
    assert true_nodes == {"23", "24"}


def test_example9_rho_propagation_steps(doc):
    """The two backward steps the paper walks through explicitly."""
    ast = normalize(parse_xpath(QUERY_Q))
    compute_relevance(ast)
    mc = MinContextEvaluator(doc)
    rho = find_bottomup_paths(ast)[0]
    # Locate the path side of ρ = 100.
    path = rho.left if hasattr(rho.left, "steps") else rho.right
    initial = {x(doc, 14), x(doc, 24)}
    result = propagate_path_backwards(mc, path, initial)
    assert ids(result) == ["23", "24"]


def test_example9_pi_boolean_table(doc):
    """boolean(π) is true exactly at X = {x11, x12, x13, x14, x22}.

    (The paper's prose claims x14 also survives π's predicate — it does
    not, e2 is false at x14 — but the final propagated X is the same
    either way; see EXPERIMENTS.md for the analysis.)"""
    ast = normalize(parse_xpath(QUERY_Q))
    compute_relevance(ast)
    mc = MinContextEvaluator(doc)
    for node in find_bottomup_paths(ast):
        eval_bottomup_path(mc, node)
    boolean_pi = find_bottomup_paths(ast)[1]
    rows = mc.tables[boolean_pi.uid]
    # The table covers all of dom (text nodes included); the paper's X is
    # its restriction to the elements.
    true_elements = {
        key[0].xml_id for key, value in rows.items() if value and key[0].is_element
    }
    assert true_elements == {"11", "12", "13", "14", "22"}


def test_example9_outermost_composition(doc, engine):
    """child::a yields {x10}; descendant::* yields dom − {x10}; the
    intersection with X gives the final answer."""
    assert ids(engine.evaluate("/child::a")) == ["10"]
    assert ids(engine.evaluate("/child::a/descendant::*")) == [
        "11", "12", "13", "14", "21", "22", "23", "24",
    ]


def test_example9_all_algorithms_agree(engine):
    expected = ["11", "12", "13", "14", "22"]
    for algorithm in ("naive", "topdown", "bottomup", "mincontext", "optmincontext"):
        assert ids(engine.evaluate(QUERY_Q, algorithm=algorithm)) == expected, algorithm
