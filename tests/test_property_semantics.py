"""Property-based tests of *semantic laws* the evaluation must satisfy,
independent of any particular algorithm (run on OPTMINCONTEXT, which the
differential suite already ties to the others)."""

import random

from hypothesis import given, settings, strategies as st

from repro.engine import XPathEngine
from repro.workloads.documents import random_document
from repro.workloads.queries import random_query


def _engine(seed, size=14):
    return XPathEngine(random_document(random.Random(seed), max_nodes=size))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 100_000))
def test_boolean_count_consistency(doc_seed, query_seed):
    """boolean(π) ⟺ π nonempty ⟺ count(π) > 0."""
    engine = _engine(doc_seed)
    path = random_query(random.Random(query_seed), max_steps=3, max_depth=1)
    nodes = engine.evaluate(path)
    as_boolean = engine.evaluate(f"boolean({path})")
    as_count = engine.evaluate(f"count({path})")
    assert as_boolean == bool(nodes)
    assert as_count == float(len(nodes))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 100_000))
def test_path_composition(doc_seed, query_seed):
    """π1/π2 from c equals ∪ {π2 from y : y ∈ π1 from c}."""
    rng = random.Random(query_seed)
    engine = _engine(doc_seed)
    left = random_query(rng, max_steps=2, max_depth=0)
    right_steps = random_query(rng, max_steps=2, max_depth=0).lstrip("/")
    composed = engine.evaluate(f"{left}/{right_steps}")
    stage_one = engine.evaluate(left)
    union = set()
    for node in stage_one:
        union.update(engine.evaluate(right_steps, context_node=node))
    assert set(composed) == union, (left, right_steps)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 100_000))
def test_union_is_set_union(doc_seed, query_seed):
    rng = random.Random(query_seed)
    engine = _engine(doc_seed)
    a = random_query(rng, max_steps=2, max_depth=0)
    b = random_query(rng, max_steps=2, max_depth=0)
    union = engine.evaluate(f"{a} | {b}")
    assert set(union) == set(engine.evaluate(a)) | set(engine.evaluate(b))
    # Document order and no duplicates at the boundary.
    pres = [n.pre for n in union]
    assert pres == sorted(pres)
    assert len(pres) == len(set(pres))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 100_000), st.integers(1, 4))
def test_positional_predicate_selects_subset(doc_seed, query_seed, k):
    engine = _engine(doc_seed)
    path = random_query(random.Random(query_seed), max_steps=2, max_depth=0)
    full = set(engine.evaluate(path))
    at_k = set(engine.evaluate(f"{path}[{k}]"))
    assert at_k <= full
    first = engine.evaluate(f"({path})[1]")
    if full:
        # (π)[1] is the document-order-first node of the whole result.
        assert first == [min(full, key=lambda n: n.pre)]
    else:
        assert first == []


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 100_000))
def test_predicate_filter_is_intersection(doc_seed, query_seed):
    """π[p] ⊆ π, and every member of π[p] satisfies p at itself when p is
    position-free."""
    rng = random.Random(query_seed)
    engine = _engine(doc_seed)
    path = random_query(rng, max_steps=2, max_depth=0)
    pred = random_query(rng, max_steps=1, max_depth=0).lstrip("/")
    filtered = engine.evaluate(f"{path}[{pred}]")
    full = set(engine.evaluate(path))
    assert set(filtered) <= full
    for node in filtered:
        assert engine.evaluate(f"boolean({pred})", context_node=node) is True


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000))
def test_double_negation_law(doc_seed):
    engine = _engine(doc_seed)
    for pred in ("//a", "//missing", "//*[. = '1']"):
        direct = engine.evaluate(f"boolean({pred})")
        doubled = engine.evaluate(f"not(not({pred}))")
        assert direct == doubled


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_self_step_identity(doc_seed):
    """π/self::node() ≡ π."""
    engine = _engine(doc_seed)
    for path in ("//a", "//*", "//text()"):
        assert engine.evaluate(f"{path}/self::node()") == engine.evaluate(path)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_descendant_shortcut_law(doc_seed):
    """//t ≡ /descendant::t (the fusion rewrite's foundation)."""
    engine = _engine(doc_seed)
    for tag in ("a", "b", "*"):
        assert engine.evaluate(f"//{tag}") == engine.evaluate(f"/descendant::{tag}")
