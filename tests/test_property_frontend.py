"""Property-based tests for the XPath front end as a whole:
unparse round-trips, rewrite is a semantics-preserving fixpoint, and the
analyses are stable under re-parsing."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.engine import XPathEngine
from repro.workloads.documents import random_document
from repro.workloads.queries import random_query
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.xpath.rewrite import RewriteStats, rewrite
from repro.xpath.unparse import unparse


def _equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 100_000))
def test_unparse_reparse_evaluates_identically(seed):
    """unparse(parse(q)) must evaluate exactly like q."""
    rng = random.Random(seed)
    query = random_query(rng)
    doc = random_document(rng, max_nodes=12)
    engine = XPathEngine(doc)
    round_tripped = unparse(parse_xpath(query))
    original = engine.evaluate(query, algorithm="mincontext")
    again = engine.evaluate(round_tripped, algorithm="mincontext")
    assert _equal(again, original), (query, round_tripped)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_rewrite_is_idempotent(seed):
    """Applying the optimizer twice changes nothing more."""
    query = random_query(random.Random(seed))
    expr = normalize(parse_xpath(query))
    compute_relevance(expr)
    once = rewrite(expr, RewriteStats())
    compute_relevance(once)
    first = unparse(once)
    second_stats = RewriteStats()
    twice = rewrite(once, second_stats)
    assert unparse(twice) == first
    assert second_stats.descendant_fusions == 0
    assert second_stats.self_elisions == 0
    assert second_stats.double_negations == 0


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 100_000))
def test_rewrite_preserves_semantics(doc_seed, query_seed):
    doc = random_document(random.Random(doc_seed), max_nodes=14)
    query = random_query(random.Random(query_seed))
    plain = XPathEngine(doc)
    optimizing = XPathEngine(doc, optimize=True)
    expected = plain.evaluate(query, algorithm="topdown")
    got = optimizing.evaluate(query, algorithm="topdown")
    assert _equal(got, expected), query


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_analyses_are_reparse_stable(seed):
    """Fragment classification and relevance must agree between a query
    and its unparse (the analyses are functions of syntax alone)."""
    from repro.xpath.fragments import core_xpath_violation, wadler_violation

    query = random_query(random.Random(seed))
    first = normalize(parse_xpath(query))
    compute_relevance(first)
    second = normalize(parse_xpath(unparse(parse_xpath(query))))
    compute_relevance(second)
    assert first.relev == second.relev
    assert (core_xpath_violation(first) is None) == (core_xpath_violation(second) is None)
    assert (wadler_violation(first) is None) == (wadler_violation(second) is None)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_table_api_matches_pointwise_evaluation(seed):
    """engine.table(q) == {n: evaluate(q, n)} for cn-only queries."""
    rng = random.Random(seed)
    doc = random_document(rng, max_nodes=10)
    engine = XPathEngine(doc)
    query = random_query(rng, max_steps=2, max_depth=1)
    compiled = engine.compile(query)
    if compiled.ast.relev and ({"cp", "cs"} & compiled.ast.relev):
        return  # table() rejects those by design
    table = engine.table(compiled)
    for node in doc.nodes:
        assert _equal(table[node], engine.evaluate(compiled, context_node=node)), (
            query,
            node.path(),
        )
