"""Property-based round-trip tests for the XML substrate."""

import random

from hypothesis import given, settings, strategies as st

from repro.workloads.documents import random_document
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

# Text/attribute alphabets including characters that need escaping.
_TEXT = st.text(
    alphabet=st.sampled_from(list("abc<>&\"' \n1")), max_size=12
)
_NAMES = st.sampled_from(["a", "b", "tag-1", "x_y", "n.s"])


@st.composite
def tree_specs(draw, depth=0):
    """Random (name, attrs, children) element specs."""
    name = draw(_NAMES)
    n_attrs = draw(st.integers(0, 2))
    attrs = {}
    for index in range(n_attrs):
        attrs[f"k{index}"] = draw(_TEXT)
    children = []
    if depth < 3:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                children.append(draw(_TEXT))
            else:
                children.append(draw(tree_specs(depth=depth + 1)))
    return (name, attrs, children)


def _build_xml(spec) -> str:
    from repro.xml.serializer import _escape_attribute, _escape_text

    name, attrs, children = spec
    pieces = [f"<{name}"]
    for key, value in attrs.items():
        pieces.append(f' {key}="{_escape_attribute(value)}"')
    if not children:
        pieces.append("/>")
        return "".join(pieces)
    pieces.append(">")
    for child in children:
        if isinstance(child, str):
            pieces.append(_escape_text(child))
        else:
            pieces.append(_build_xml(child))
    pieces.append(f"</{name}>")
    return "".join(pieces)


def _structure(node):
    """Comparable shape: (kind, name, value, attrs, children)."""
    return (
        node.kind.value,
        node.name,
        node.value,
        tuple((a.name, a.value) for a in node.attributes),
        tuple(_structure(c) for c in node.children),
    )


@settings(max_examples=80, deadline=None)
@given(tree_specs())
def test_parse_serialize_round_trip(spec):
    source = _build_xml(spec)
    doc = parse_document(source)
    out = serialize(doc)
    doc2 = parse_document(out)
    assert _structure(doc.root) == _structure(doc2.root)
    # Serialization is a fixpoint after one round.
    assert serialize(doc2) == out


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 9999), st.integers(1, 40))
def test_generated_documents_round_trip(seed, size):
    doc = random_document(random.Random(seed), max_nodes=size)
    out = serialize(doc)
    doc2 = parse_document(out)
    assert _structure(doc.root) == _structure(doc2.root)
    assert len(doc2) == len(doc)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 9999))
def test_numbering_invariants(seed):
    """pre is positional; sizes tile the tree exactly."""
    doc = random_document(random.Random(seed), max_nodes=30)
    for index, node in enumerate(doc.nodes):
        assert node.pre == index
    for node in doc.nodes:
        span = sum(1 for other in doc.nodes if node.pre <= other.pre < node.pre + node.size)
        assert span == node.size
        children_plus_attrs = sum(c.size for c in node.children) + len(node.attributes)
        assert node.size == 1 + children_plus_attrs
