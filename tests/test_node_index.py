"""NodeIndex invariants and fused-kernel/scan byte-identity (PR 5).

Two properties carry the whole output-sensitive fast path:

* **Index invariants** — pre/post consistency (interval containment iff
  the two-number test), partition sortedness/completeness, and the
  size/depth/parent arrays mirroring the tree, asserted directly over a
  fuzz corpus (:meth:`repro.xml.index.NodeIndex.validate` plus explicit
  checks here).
* **Kernel ≡ scan** — for every axis × node test × context-set shape
  (attributes, the document node, text/comment nodes, the empty set, all
  of ``dom``), the fused dispatch returns *exactly* the Definition-1
  scan's answer in every kernel mode (``auto``, forced ``indexed``,
  forced ``scan``). The ``indexed`` mode matters: it drives the
  partition kernels even where the cost dispatch would fall back, so
  both branches are proven equal regardless of the heuristic.

The exact fused/fallback accounting is asserted here per call and under
contention in ``tests/test_thread_safety.py``.
"""

import random

import pytest

from repro import stats
from repro.axes.axes import (
    ALL_AXES,
    INTERVAL_AXES,
    INVERSE_INTERVAL_AXES,
    KERNEL_MODES,
    axis_set,
    axis_test_pres,
    fused_axis_set,
    fused_inverse_axis_set,
    inverse_axis_set,
    inverse_axis_test_pres,
    kernel_mode,
    kernel_mode_forced,
    matches_node_test,
    set_kernel_mode,
)
from repro.workloads.documents import (
    book_catalog,
    deep_chain,
    random_document,
    running_example_document,
    wide_tree,
)
from repro.xml.index import (
    NodeIndex,
    merge_difference,
    merge_intersection,
    merge_union,
    node_index,
)
from repro.xml.parser import parse_document
from repro.xpath.ast import NodeTest

SEED = 20030614


def _corpus():
    rng = random.Random(SEED)
    documents = [
        running_example_document(),
        book_catalog(books=4),
        wide_tree(width=7),
        deep_chain(9),
        parse_document(
            '<a id="1">x<b id="2"><a id="3">100</a>y</b>'
            "<?target data?><!--note-->"
            '<c id="4" kind="k"><b id="5">1</b><b id="6">2</b></c></a>'
        ),
    ]
    documents += [random_document(rng, max_nodes=18) for _ in range(4)]
    return documents


_TESTS = [
    NodeTest("name", "a"),
    NodeTest("name", "b"),
    NodeTest("name", "price"),
    NodeTest("name", "nosuch"),
    NodeTest("name", "id"),       # attribute name on the attribute axis
    NodeTest("name", "kind"),
    NodeTest("wildcard"),
    NodeTest("node"),
    NodeTest("text"),
    NodeTest("comment"),
    NodeTest("pi"),
    NodeTest("pi", "target"),
]


def _context_sets(document, rng):
    nodes = document.nodes
    attributes = [n for n in nodes if n.is_attribute]
    sets = [
        [],
        [document.root],
        [nodes[-1]],
        rng.sample(nodes, min(3, len(nodes))),
        rng.sample(nodes, min(9, len(nodes))),
        list(nodes),
    ]
    if attributes:
        sets.append(attributes[:2])
        sets.append(rng.sample(nodes, min(4, len(nodes))) + attributes[:1])
    return sets


# ----------------------------------------------------------------------
# Index invariants
# ----------------------------------------------------------------------


def test_node_index_invariants_hold_on_the_corpus():
    for document in _corpus():
        index = node_index(document)
        index.validate()


def test_pre_post_numbering_characterizes_ancestorship():
    """The classic two-number test: x is a proper ancestor of y iff
    pre(x) < pre(y) and post(x) > post(y)."""
    for document in _corpus():
        index = node_index(document)
        for x in document.nodes:
            for y in document.nodes:
                expected = x.is_ancestor_of(y) and x is not y
                assert index.is_ancestor(x.pre, y.pre) == expected, (x, y)


def test_partitions_are_sorted_and_complete():
    # list(...) around partitions: packed indexes expose memoryview
    # slices, which never compare equal to lists directly.
    for document in _corpus():
        index = node_index(document)
        for tag, members in index.by_tag.items():
            members = list(members)
            assert members == sorted(members)
            expected = [n.pre for n in document.nodes if n.is_element and n.name == tag]
            assert members == expected
        all_tagged = sorted(p for ps in index.by_tag.values() for p in ps)
        assert all_tagged == list(index.elements)
        for name, members in index.by_attribute.items():
            expected = [
                n.pre for n in document.nodes if n.is_attribute and n.name == name
            ]
            assert list(members) == expected
        assert list(index.non_attributes) == [
            n.pre for n in document.nodes if not n.is_attribute
        ]


def test_packed_and_list_indexes_hold_identical_columns():
    """The flat-column (packed) representation is value-identical to the
    boxed-list reference representation, cell by cell."""
    for document in _corpus():
        packed = NodeIndex(document, packed=True)
        plain = NodeIndex(document, packed=False)
        assert packed.packed and not plain.packed
        assert packed.total == plain.total
        for column in ("size", "post", "depth", "parent_pre"):
            assert list(getattr(packed, column)) == getattr(plain, column), column
        for group in ("by_tag", "by_attribute", "by_pi_target"):
            packed_group = getattr(packed, group)
            plain_group = getattr(plain, group)
            assert sorted(packed_group) == sorted(plain_group), group
            for name, members in plain_group.items():
                assert list(packed_group[name]) == members, (group, name)
        for kind in (
            "elements",
            "attributes",
            "non_attributes",
            "text_nodes",
            "comments",
            "pis",
        ):
            assert list(getattr(packed, kind)) == getattr(plain, kind), kind
        packed.validate()
        plain.validate()


def test_node_index_is_cached_and_refuses_unfinalized_documents():
    document = book_catalog(books=2)
    assert node_index(document) is node_index(document)
    from repro.xml.document import Document

    with pytest.raises(ValueError):
        NodeIndex(Document())


def test_index_cache_never_pins_a_document():
    """The weak-keyed cache promise: indexing a document must not keep
    it alive — the index holds only a weak back-reference, so dropping
    the last strong reference collects both document and index."""
    import gc
    import weakref

    document = book_catalog(books=2)
    index = node_index(document)
    assert index.document is document
    finalizer = weakref.ref(document)
    del document
    del index
    gc.collect()
    assert finalizer() is None, "indexed document leaked through the cache"


# ----------------------------------------------------------------------
# Fused kernels ≡ Definition-1 scans, every axis × test × mode
# ----------------------------------------------------------------------


def _scan_reference(document, axis, X, test):
    return {y for y in axis_set(document, axis, X) if matches_node_test(y, test, axis)}


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_fused_axis_set_matches_scan_everywhere(mode):
    rng = random.Random(SEED + 1)
    cells = 0
    with kernel_mode_forced(mode):
        for document in _corpus():
            for X in _context_sets(document, rng):
                for axis in sorted(ALL_AXES):
                    for test in _TESTS:
                        expected = _scan_reference(document, axis, X, test)
                        assert fused_axis_set(document, axis, X, test) == expected, (
                            mode,
                            axis,
                            test.kind,
                            test.name,
                        )
                        cells += 1
    assert cells > 0


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_fused_inverse_axis_set_matches_scan_everywhere(mode):
    rng = random.Random(SEED + 2)
    with kernel_mode_forced(mode):
        for document in _corpus():
            for Y in _context_sets(document, rng):
                for axis in sorted(ALL_AXES):
                    expected = inverse_axis_set(document, axis, Y)
                    assert fused_inverse_axis_set(document, axis, Y) == expected, (
                        mode,
                        axis,
                    )


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_pres_level_kernels_agree_and_stay_sorted(mode):
    """The sorted-array forms (the corexpath sweeps' interface) must
    return sorted pre arrays equal to the set forms."""
    rng = random.Random(SEED + 3)
    with kernel_mode_forced(mode):
        for document in _corpus():
            for X in _context_sets(document, rng):
                # The pres interface's contract: sorted, duplicate-free.
                X = list(dict.fromkeys(X))
                pres = sorted(x.pre for x in X)
                for axis in sorted(ALL_AXES):
                    for test in (NodeTest("node"), NodeTest("name", "b")):
                        # following returns a zero-copy partition view —
                        # normalize through list() like any partition.
                        out = list(axis_test_pres(document, axis, pres, test))
                        assert out == sorted(out)
                        expected = _scan_reference(document, axis, X, test)
                        assert out == sorted(y.pre for y in expected), (mode, axis)
                    inverse = inverse_axis_test_pres(document, axis, pres)
                    assert inverse == sorted(inverse)
                    expected_inverse = inverse_axis_set(document, axis, X)
                    assert inverse == sorted(y.pre for y in expected_inverse), (
                        mode,
                        axis,
                    )


def test_id_pseudo_axis_kernels_match_scan():
    """The id pseudo-axis rides the enumerated fused path (forward) and
    the Definition-1 token index (inverse); both must equal the scans on
    documents whose string values dereference real ids."""
    document = running_example_document()
    nodes = document.nodes
    rng = random.Random(SEED + 4)
    for mode in KERNEL_MODES:
        with kernel_mode_forced(mode):
            for X in ([], [document.root], rng.sample(nodes, 5), list(nodes)):
                for test in (NodeTest("node"), NodeTest("name", "d"), NodeTest("wildcard")):
                    assert fused_axis_set(document, "id", X, test) == _scan_reference(
                        document, "id", X, test
                    )
                assert fused_inverse_axis_set(document, "id", X) == inverse_axis_set(
                    document, "id", X
                )


# ----------------------------------------------------------------------
# Dispatch accounting and mode plumbing
# ----------------------------------------------------------------------


def test_every_dispatch_counts_exactly_one_outcome():
    document = book_catalog(books=3)
    node_index(document)  # build outside the measured window
    rng = random.Random(SEED + 5)
    X = rng.sample(document.nodes, 6)
    test = NodeTest("name", "title")
    for mode, expect_fused in (("indexed", True), ("scan", False)):
        with kernel_mode_forced(mode):
            before = stats.axis_kernel_stats.snapshot()
            calls = 0
            for axis in sorted(ALL_AXES):
                fused_axis_set(document, axis, X, test)
                fused_inverse_axis_set(document, axis, X)
                calls += 2
            after = stats.axis_kernel_stats.snapshot()
        fused_delta = after["fused_hits"] - before["fused_hits"]
        fallback_delta = after["fallback_scans"] - before["fallback_scans"]
        assert fused_delta + fallback_delta == calls
        if mode == "scan":
            assert fused_delta == 0
        else:
            # Forward: every axis has a fused kernel. Inverse: only the
            # interval axes do; the rest honestly count as scans.
            assert fused_delta == len(ALL_AXES) + len(INVERSE_INTERVAL_AXES)
        assert after["index_builds"] == before["index_builds"]


def test_auto_dispatch_falls_back_when_predicted_output_is_large():
    """descendant::node() from the root of an attribute-free document
    predicts ~|D| output — the auto dispatch must take the guaranteed
    scan, not the kernel. (With attributes in play the node() partition
    is genuinely smaller than dom and the kernel may rightly win.)"""
    document = parse_document("<a>" + "<b>x</b>" * 50 + "</a>")
    node_index(document)
    assert kernel_mode() == "auto"
    before = stats.axis_kernel_stats.snapshot()
    fused_axis_set(document, "descendant", [document.root], NodeTest("node"))
    after = stats.axis_kernel_stats.snapshot()
    assert after["fallback_scans"] - before["fallback_scans"] == 1
    # A selective name test from the same context stays on the kernel.
    before = stats.axis_kernel_stats.snapshot()
    fused_axis_set(document, "descendant", [document.root], NodeTest("name", "a"))
    after = stats.axis_kernel_stats.snapshot()
    assert after["fused_hits"] - before["fused_hits"] == 1


def test_kernel_mode_validates_and_restores():
    assert kernel_mode() == "auto"
    with pytest.raises(ValueError):
        set_kernel_mode("bogus")
    with kernel_mode_forced("scan"):
        assert kernel_mode() == "scan"
        with kernel_mode_forced("indexed"):
            assert kernel_mode() == "indexed"
        assert kernel_mode() == "scan"
    assert kernel_mode() == "auto"


# ----------------------------------------------------------------------
# Sorted-array node-set algebra
# ----------------------------------------------------------------------


def test_merge_algebra_matches_set_algebra():
    rng = random.Random(SEED + 6)
    for _ in range(200):
        a = sorted(rng.sample(range(60), rng.randint(0, 20)))
        b = sorted(rng.sample(range(60), rng.randint(0, 20)))
        assert merge_union(a, b) == sorted(set(a) | set(b))
        assert merge_intersection(a, b) == sorted(set(a) & set(b))
        assert merge_difference(a, b) == sorted(set(a) - set(b))


def test_merge_intersection_gallops_on_skewed_sizes():
    big = list(range(0, 100000, 3))
    small = [0, 2, 3, 300, 99999, 99999 // 3 * 3]
    assert merge_intersection(small, big) == sorted(set(small) & set(big))
    assert merge_intersection(big, small) == sorted(set(small) & set(big))
    assert merge_intersection([], big) == []


# ----------------------------------------------------------------------
# End-to-end: whole queries are mode-independent
# ----------------------------------------------------------------------


def test_evaluators_are_byte_identical_across_kernel_modes():
    """One fuzz pass per mode: every algorithm returns the same bytes
    whatever the dispatch does — the EXP-AXIS value gate in miniature."""
    from repro.engine import XPathEngine
    from repro.workloads.queries import random_core_query, random_full_query

    rng = random.Random(SEED + 7)
    documents = [random_document(rng, max_nodes=16) for _ in range(3)]
    queries = [random_core_query(rng, max_steps=3) for _ in range(6)]
    queries += [random_full_query(rng, max_steps=3) for _ in range(6)]
    queries += ["/descendant::b/following::*", "//b[preceding::c]"]
    baseline = {}
    with kernel_mode_forced("scan"):
        for d_index, document in enumerate(documents):
            engine = XPathEngine(document)
            for query in queries:
                compiled = engine.compile(query)
                names = ["mincontext", "optmincontext"]
                if compiled.is_core_xpath:
                    names.append("corexpath")
                for name in names:
                    baseline[(d_index, query, name)] = engine.evaluate(
                        compiled, algorithm=name
                    )
    for mode in ("auto", "indexed"):
        with kernel_mode_forced(mode):
            for d_index, document in enumerate(documents):
                engine = XPathEngine(document)
                for query in queries:
                    compiled = engine.compile(query)
                    names = ["mincontext", "optmincontext"]
                    if compiled.is_core_xpath:
                        names.append("corexpath")
                    for name in names:
                        assert engine.evaluate(compiled, algorithm=name) == baseline[
                            (d_index, query, name)
                        ], (mode, query, name)
