"""Differential fuzzing over the Core XPath grammar — all six algorithms.

:func:`repro.workloads.queries.random_core_query` draws queries from
exactly Definition 12's grammar (location paths whose predicates are
and/or/not combinations of location paths), so every generated query is
evaluable by *all six* algorithms — including the linear-time
``corexpath`` evaluator, which the general fuzz loop in
``test_differential.py`` can only exercise opportunistically. The naive
recursive interpreter is the oracle: the other five must match it on
every case.

The suite is deterministic (fixed seed) and generates ~200 cases across
hand-built and random workload documents. It is marked ``slow`` — deselect
with ``pytest -m "not slow"`` for the quick tier.
"""

import random

import pytest

from repro.engine import XPathEngine
from repro.service import QueryService
from repro.workloads.documents import (
    random_document,
    running_example_document,
    wide_tree,
)
from repro.workloads.queries import random_core_query, random_full_query
from repro.xml.parser import parse_document

pytestmark = pytest.mark.slow

SEED = 20030612
CASES_PER_DOCUMENT = 20
RANDOM_DOCUMENTS = 7

#: The oracle first; the five others must agree with it.
SIX = ("naive", "bottomup", "topdown", "mincontext", "optmincontext", "corexpath")


def _fixed_documents():
    return [
        running_example_document(),
        wide_tree(width=6),
        parse_document(
            '<a id="1">x<b id="2"><a id="3">100</a>y</b>'
            '<c id="4" kind="k"><b id="5">1</b><b id="6">2</b><b id="7">2</b></c>'
            '<!--comment--><d id="8"/></a>'
        ),
    ]


def _check_six_way(engine, query):
    compiled = engine.compile(query)
    assert compiled.is_core_xpath, (
        f"generator escaped the Core XPath grammar: {query!r} "
        f"({compiled.core_violation})"
    )
    oracle = engine.evaluate(compiled, algorithm=SIX[0])
    for name in SIX[1:]:
        got = engine.evaluate(compiled, algorithm=name)
        assert got == oracle, (
            f"{name} disagrees with {SIX[0]} on {query!r}: {got!r} != {oracle!r}"
        )
    return oracle


def test_six_way_agreement_on_fixed_documents():
    rng = random.Random(SEED)
    cases = 0
    for document in _fixed_documents():
        engine = XPathEngine(document)
        for _ in range(CASES_PER_DOCUMENT):
            _check_six_way(engine, random_core_query(rng))
            cases += 1
    assert cases == CASES_PER_DOCUMENT * 3


def test_six_way_agreement_on_random_documents():
    rng = random.Random(SEED + 1)
    cases = 0
    for _ in range(RANDOM_DOCUMENTS):
        document = random_document(rng, max_nodes=14)
        engine = XPathEngine(document)
        for _ in range(CASES_PER_DOCUMENT):
            _check_six_way(engine, random_core_query(rng))
            cases += 1
    assert cases == CASES_PER_DOCUMENT * RANDOM_DOCUMENTS


def test_six_way_agreement_from_varied_context_nodes():
    """Core XPath agreement must hold from any element context node."""
    rng = random.Random(SEED + 2)
    document = random_document(rng, max_nodes=12)
    engine = XPathEngine(document)
    elements = document.elements()
    for _ in range(CASES_PER_DOCUMENT):
        query = random_core_query(rng, max_steps=3)
        context = rng.choice(elements)
        compiled = engine.compile(query)
        oracle = engine.evaluate(compiled, context_node=context, algorithm=SIX[0])
        for name in SIX[1:]:
            got = engine.evaluate(compiled, context_node=context, algorithm=name)
            assert got == oracle, (query, context.path(), name)


def _check_differential(engine, query):
    """Differential check with a corexpath-aware skip: queries inside
    Core XPath go through all six algorithms, the rest through the five
    full-XPath ones (corexpath's fragment precondition doesn't hold).
    Returns the compiled plan so callers can count fragment coverage."""
    compiled = engine.compile(query)
    names = SIX if compiled.is_core_xpath else SIX[:-1]
    oracle = engine.evaluate(compiled, algorithm=names[0])
    for name in names[1:]:
        got = engine.evaluate(compiled, algorithm=name)
        assert got == oracle, (
            f"{name} disagrees with {names[0]} on {query!r}: {got!r} != {oracle!r}"
        )
    return compiled


def test_full_grammar_differential_on_fixed_documents():
    """random_full_query extends the grammar with position()/last()
    arithmetic, count(), and string functions; the five full-XPath
    algorithms must agree on every case, all six on the cases that stay
    inside Core XPath."""
    rng = random.Random(SEED + 10)
    core_cases = 0
    full_cases = 0
    for document in _fixed_documents():
        engine = XPathEngine(document)
        for _ in range(CASES_PER_DOCUMENT):
            compiled = _check_differential(engine, random_full_query(rng))
            if compiled.is_core_xpath:
                core_cases += 1
            else:
                full_cases += 1
    # The distribution must straddle the fragment boundary, or the
    # corexpath-aware skip (and the six-way check) would be vacuous.
    assert core_cases > 0
    assert full_cases > 0


def test_full_grammar_differential_on_random_documents():
    rng = random.Random(SEED + 11)
    cases = 0
    for _ in range(RANDOM_DOCUMENTS):
        document = random_document(rng, max_nodes=14)
        engine = XPathEngine(document)
        for _ in range(CASES_PER_DOCUMENT):
            _check_differential(engine, random_full_query(rng))
            cases += 1
    assert cases == CASES_PER_DOCUMENT * RANDOM_DOCUMENTS


def test_full_grammar_exercises_the_new_constructs():
    """The extended generator actually emits what it advertises."""
    rng = random.Random(SEED + 12)
    bindings: dict = {}
    corpus = [random_full_query(rng, variables=bindings) for _ in range(120)]
    text = "\n".join(corpus)
    assert "position()" in text
    assert "last()" in text
    assert "count(" in text
    assert any(op in text for op in (" + ", " - ", " * ", " div ", " mod "))
    assert any(
        fn in text
        for fn in ("contains(", "starts-with(", "substring(", "string-length(")
    )
    # The PR 3 frontier: top-level unions and $-variable references.
    assert " | " in text
    assert "$" in text
    # The PR 5 frontier: id() pseudo-axis queries, in both the plain
    # function form and the id(π)-normalizes-to-a-step form.
    assert "id('" in text
    assert "id(self::node())" in text or "id(child::*)" in text or "id(id(" in text
    assert bindings, "variable references must record their bindings"
    assert all(
        isinstance(value, (str, float, int, bool)) for value in bindings.values()
    ), "generated bindings must be scalars (process-backend shippable)"


def test_full_grammar_unions_and_variables_differential():
    """The union/variable extension holds the five-way agreement (six-way
    when a case lands inside Core XPath), with the corexpath-aware skip
    driven purely by the compiled plan's classification — a top-level
    union is not a location path, so it must classify outside Core."""
    rng = random.Random(SEED + 14)
    bindings: dict = {}
    # Generate the whole corpus first: the bindings dict accumulates as a
    # side effect, and the engines must be built with the final dict
    # (XPathEngine copies its variables at construction).
    corpus = [random_full_query(rng, variables=bindings) for _ in range(60)]
    assert any(" | " in query for query in corpus)
    assert any("$" in query for query in corpus)
    union_cases = 0
    for document in _fixed_documents():
        engine = XPathEngine(document, variables=bindings)
        for query in corpus:
            compiled = _check_differential(engine, query)
            if " | " in query:
                union_cases += 1
                assert not compiled.is_core_xpath, query
    assert union_cases > 0


def test_id_pseudo_axis_differential():
    """PR 5's fuzz frontier: the five full-XPath algorithms agree on
    id() pseudo-axis queries over documents generated *with* id
    attributes (random_document keys every element sequentially, so the
    probes dereference real nodes). The pseudo-axis is outside Core
    XPath, which the classification-driven skip must report."""
    rng = random.Random(SEED + 30)
    id_cases = 0
    nonempty = 0
    for _ in range(RANDOM_DOCUMENTS):
        document = random_document(rng, max_nodes=16)
        engine = XPathEngine(document)
        for _ in range(CASES_PER_DOCUMENT):
            query = random_full_query(rng, max_steps=3)
            compiled = _check_differential(engine, query)
            if "id(" in query:
                id_cases += 1
                assert not compiled.is_core_xpath, query
                if engine.evaluate(compiled):
                    nonempty += 1
    assert id_cases >= 10, "the grammar must actually emit id() predicates"
    # The probes must hit real nodes some of the time, or the axis (and
    # its inverse) would only ever see empty sets.
    assert nonempty > 0


def test_variable_corpus_through_the_sharded_service():
    """Scalar fuzz bindings ship through every scheduler backend — the
    generated bindings are scalars by construction, so even the process
    backend (which rejects node-set bindings) accepts the corpus."""
    from repro.service import ShardedExecutor

    rng = random.Random(SEED + 15)
    bindings: dict = {}
    queries = [
        random_full_query(rng, max_steps=3, variables=bindings) for _ in range(10)
    ]
    documents = [random_document(rng, max_nodes=12) for _ in range(4)]
    sequential = QueryService(variables=bindings).evaluate_many(queries, documents)
    for backend in ("serial", "thread", "process", "async"):
        batch = ShardedExecutor(
            workers=2, backend=backend, variables=bindings
        ).execute(queries, documents)
        assert batch.values == sequential.values, backend


def test_full_grammar_through_the_sharded_service():
    """Sharded evaluation returns byte-identical results to a fresh
    engine on the full-grammar corpus — the executor is grammar-blind."""
    rng = random.Random(SEED + 13)
    documents = [random_document(rng, max_nodes=12) for _ in range(4)]
    queries = [random_full_query(rng, max_steps=3) for _ in range(12)]
    service = QueryService()
    batch = service.evaluate_many(queries, documents, workers=2)
    for doc_index, document in enumerate(documents):
        engine = XPathEngine(document)
        for query_index, query in enumerate(queries):
            assert batch.value(doc_index, query_index) == engine.evaluate(query), (
                query,
            )


def _nodeset_corpus(seed: int, count: int):
    """A corpus referencing the node-set variable ``$nset`` (plus the
    scalar pool), with the generator's placeholder bindings. Two
    hand-built queries are appended so ``$nset`` coverage never depends
    on the random draw."""
    rng = random.Random(seed)
    bindings: dict = {}
    corpus = [
        random_full_query(rng, variables=bindings, nodeset_names=("nset",))
        for _ in range(count)
    ]
    corpus.append("/descendant::*[count($nset) >= 1]")
    corpus.append("//b[self::* = $nset] | //c[$nset]")
    bindings.setdefault("nset", ())
    return corpus, bindings


def test_nodeset_variable_corpus_exercises_references():
    """The generator emits $nset references and records the empty-tuple
    placeholder callers must rebind per document."""
    corpus, bindings = _nodeset_corpus(SEED + 20, 60)
    assert sum("$nset" in query for query in corpus) >= 3
    assert bindings["nset"] == ()
    scalars = {k: v for k, v in bindings.items() if k != "nset"}
    assert all(isinstance(v, (str, float, int, bool)) for v in scalars.values())


def test_nodeset_variable_bindings_differential():
    """PR 3's remaining fuzz frontier: node-set-valued $v bindings. Each
    document binds $nset to its own ``//b`` nodes (node-sets must not
    cross documents — pre-order dedup/order is per-document), then the
    usual corexpath-aware differential check runs: five-way agreement,
    six-way when a case classifies inside Core XPath."""
    corpus, bindings = _nodeset_corpus(SEED + 21, 40)
    nodeset_cases = 0
    for document in _fixed_documents():
        document_bindings = dict(bindings)
        document_bindings["nset"] = XPathEngine(document).evaluate(
            "/descendant::*[position() <= 5]"
        )
        assert document_bindings["nset"], "fixture documents contain elements"
        engine = XPathEngine(document, variables=document_bindings)
        for query in corpus:
            _check_differential(engine, query)
            if "$nset" in query:
                nodeset_cases += 1
    assert nodeset_cases >= 3


def test_nodeset_bindings_through_serial_thread_async_backends():
    """Node-set bindings ship through every in-process backend: the
    nodes live in the parent's trees, which serial/thread/async workers
    share. The same document twice gives two real shards."""
    from repro.service import ShardedExecutor

    corpus, bindings = _nodeset_corpus(SEED + 22, 10)
    queries = [query for query in corpus if "$nset" in query][:6]
    assert len(queries) >= 2
    for document in _fixed_documents()[:2]:
        document_bindings = dict(bindings)
        document_bindings["nset"] = XPathEngine(document).evaluate("//b")
        documents = [document, document]
        sequential = QueryService(variables=document_bindings).evaluate_many(
            queries, documents
        )
        for backend in ("serial", "thread", "async"):
            batch = ShardedExecutor(
                workers=2, backend=backend, variables=document_bindings
            ).execute(queries, documents)
            assert batch.values == sequential.values, backend
            assert batch.workers == 2


def test_process_backend_rejects_nodeset_bindings_cleanly():
    """The process backend's scalar-bindings guard must refuse node-set
    bindings at construction, with a message pointing at the in-process
    backends — not fail somewhere inside a worker."""
    from repro.service import ShardedExecutor

    document = _fixed_documents()[0]
    bindings = {"nset": XPathEngine(document).evaluate("//b")}
    with pytest.raises(ValueError) as excinfo:
        ShardedExecutor(workers=2, backend="process", variables=bindings)
    message = str(excinfo.value)
    assert "scalar" in message
    assert "nset" in message


def test_fuzz_corpus_through_the_service_layer():
    """The cached service path returns byte-identical results to the
    fresh-engine path on the fuzz corpus (plans and results both reused)."""
    rng = random.Random(SEED + 3)
    document = random_document(rng, max_nodes=14)
    engine = XPathEngine(document)
    service = QueryService(plan_capacity=32)
    queries = [random_core_query(rng) for _ in range(30)]
    for query in queries + queries:  # second pass: all cache hits
        assert service.evaluate(query, document) == engine.evaluate(query)
    assert service.plans.stats.hits >= len(queries)


def test_fuzz_is_deterministic():
    """Same seed, same corpus — reproducibility of failures matters more
    than breadth here."""
    def corpus(seed):
        rng = random.Random(seed)
        return [random_core_query(rng) for _ in range(10)]

    assert corpus(SEED) == corpus(SEED)


def test_union_arms_inside_predicates_differential():
    """PR 7's fuzz frontier: predicates holding unions of paths —
    including *absolute* arms, which re-root at the document root mid-
    predicate — keep the five-way agreement. These predicates are
    outside Core XPath (Definition 12 predicates are and/or/not over
    single paths), which the classification-driven skip must report;
    the *main* path still carries step_keys, so such plans stay
    sharable in the batch DAG."""
    rng = random.Random(SEED + 40)
    bindings: dict = {}
    corpus = [random_full_query(rng, variables=bindings) for _ in range(90)]

    def union_predicate_arms(query):
        return "[" in query and " | /" in query.split("[", 1)[1]

    assert any(union_predicate_arms(query) for query in corpus), (
        "the grammar must emit union-of-paths predicates with absolute arms"
    )
    arm_cases = 0
    for document in _fixed_documents():
        engine = XPathEngine(document, variables=bindings)
        for query in corpus:
            compiled = _check_differential(engine, query)
            if union_predicate_arms(query):
                arm_cases += 1
                assert not compiled.is_core_xpath, query
    assert arm_cases > 0


def test_batch_sharing_differential():
    """share=True returns exactly the values of share=False on the full
    fuzz grammar, with the DAG counters reconciling exactly — the batch
    layer's own five-way-agreement analogue."""
    rng = random.Random(SEED + 41)
    queries = [random_full_query(rng) for _ in range(24)]
    # Guaranteed-sharing pairs: a syntactic-variant duo (normalizes to
    # one chain) and a prefix family over the generator's tag pool.
    queries += [
        "//a",
        "/descendant-or-self::node()/child::a",
        "//a/b",
        "//a/b/c",
        "//a/b[position() = last()]",
    ]
    documents = [random_document(rng, max_nodes=20) for _ in range(3)]
    shared = QueryService().evaluate_many(queries, documents)
    independent = QueryService().evaluate_many(queries, documents, share=False)
    assert shared.values == independent.values
    assert independent.batch_plan == {}
    plan = shared.batch_plan
    assert plan["shared_plans"] >= 5
    assert plan["cells"] == (
        plan["memo_hits"] + plan["shared_evaluations"] + plan["fallback_cells"]
    )
    if plan["fallback_cells"] == 0:
        assert plan["steps_saved"] >= 0
