"""The serving daemon: protocol, quotas, admission, deadlines, drain.

The daemon runs on a private event loop in a background thread (no
pytest-asyncio in the toolchain); clients are real blocking sockets
through :class:`repro.serve.client.ServeClient`, so every test
exercises the actual wire path. Deterministic failure modes come from
the :class:`repro.serve.faults.FaultInjector` seam — the
``evaluations_started`` counter doubles as the proof that rejected
requests never reach evaluation.
"""

import asyncio
import contextlib
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import _CODE_EXITS, error_exit_code, main as cli_main
from repro.engine import XPathEngine
from repro.errors import (
    ERROR_CODES,
    PROTOCOL_CODES,
    DeadlineExceededError,
    OverloadError,
    ProtocolError,
    QuotaExceededError,
    RateLimitedError,
    RemoteError,
    ReproError,
    error_code,
)
from repro.serve import FaultInjector, ServeClient, XPathDaemon
from repro.serve.admission import AdmissionController
from repro.serve.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame
from repro.serve.quotas import ClientQuota, ClientState, TokenBucket
from repro.service.service import QueryService
from repro.xml.parser import parse_document

BOOKS = (
    "<lib><book><title>A</title><price>8</price></book>"
    "<book><title>B</title><price>23</price></book></lib>"
)


@contextlib.contextmanager
def running_daemon(**kwargs):
    """A daemon on its own loop thread; drains and joins on exit."""
    holder = {}
    ready = threading.Event()

    def run():
        async def main():
            daemon = XPathDaemon(**kwargs)
            await daemon.start()
            holder["daemon"] = daemon
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await daemon.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "daemon failed to start"
    try:
        yield holder["daemon"]
    finally:
        with contextlib.suppress(RuntimeError):
            holder["loop"].call_soon_threadsafe(holder["daemon"].initiate_drain)
        thread.join(15)
        assert not thread.is_alive(), "daemon loop failed to drain"


def permissive(service, **overrides):
    """An admission controller that admits everything (tests that want
    to reach evaluation, deadlines, or faults without pricing noise)."""
    defaults = dict(seconds_per_unit=1e-12, max_cost_seconds=60.0)
    defaults.update(overrides)
    return AdmissionController(service, **defaults)


def assert_identities(snapshot):
    """The two exact reconciliation identities every test can close on."""
    assert snapshot["queries"] == (
        snapshot["admitted"] + snapshot["rejected"] + snapshot["request_errors"]
    )
    assert snapshot["admitted"] == (
        snapshot["completed"] + snapshot["deadlined"] + snapshot["failed"]
    )


# ----------------------------------------------------------------------
# protocol frames
# ----------------------------------------------------------------------


def test_frame_roundtrip():
    frame = {"verb": "QUERY", "id": 7, "query": "//b", "doc": "d"}
    assert decode_frame(encode_frame(frame)) == frame


@pytest.mark.parametrize(
    "line",
    [b"not json\n", b"[1, 2]\n", b'"just a string"\n', b"\xff\xfe\n"],
)
def test_malformed_frames_raise_protocol_error(line):
    with pytest.raises(ProtocolError):
        decode_frame(line)


def test_oversized_frame_raises_protocol_error():
    with pytest.raises(ProtocolError):
        encode_frame({"xml": "x" * MAX_FRAME_BYTES})
    with pytest.raises(ProtocolError):
        decode_frame(b"x" * (MAX_FRAME_BYTES + 1))


# ----------------------------------------------------------------------
# error taxonomy: stable codes <-> exit codes (table-driven)
# ----------------------------------------------------------------------


def _instantiate(error_class):
    """Build an instance of any library error class (a few constructors
    take structured arguments rather than one message)."""
    if error_class is RemoteError:
        return error_class("EVALUATION", "boom")
    if error_class.__name__ == "WrongArityError":
        return error_class("name", 2, "1")
    if error_class.__name__ == "UnknownAlgorithmError":
        return error_class("boom", ("auto",))
    return error_class("boom")


@pytest.mark.parametrize(
    "error_class,expected_code", ERROR_CODES, ids=lambda v: getattr(v, "__name__", v)
)
def test_error_classes_map_to_their_stable_codes(error_class, expected_code):
    error = _instantiate(error_class)
    code = error_code(error)
    if error_class is RemoteError:
        # RemoteError relays the server's code verbatim.
        assert code == "EVALUATION"
    else:
        assert code == expected_code
    assert code in PROTOCOL_CODES


@pytest.mark.parametrize(
    "error_class", [cls for cls, _ in ERROR_CODES], ids=lambda c: c.__name__
)
def test_exit_codes_cohere_with_protocol_codes(error_class):
    """The satellite identity: a query failing remotely exits exactly
    as the same failure would locally — class table and code table
    always agree."""
    error = _instantiate(error_class)
    assert error_exit_code(error) == _CODE_EXITS[error_code(error)]


def test_every_protocol_code_has_an_exit_code():
    assert set(_CODE_EXITS) == PROTOCOL_CODES


def test_exit_codes_distinguish_the_families():
    distinct = {
        error_exit_code(_instantiate(cls))
        for cls in (
            ReproError,
            OverloadError,
            DeadlineExceededError,
            QuotaExceededError,
            ProtocolError,
        )
    } | {error_exit_code(RemoteError("SNAPSHOT_CORRUPT", "x"))}
    # ERROR=1, OVERLOAD=7 (quota shares it), DEADLINE=8, SERVE=9, STORE=6.
    assert distinct == {1, 6, 7, 8, 9}


# ----------------------------------------------------------------------
# quotas
# ----------------------------------------------------------------------


def test_token_bucket_with_a_fake_clock():
    now = [0.0]
    bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
    assert bucket.try_take() is None
    assert bucket.try_take() is None
    wait = bucket.try_take()
    assert wait == pytest.approx(0.5)
    now[0] += 0.5  # one token accrues
    assert bucket.try_take() is None
    assert bucket.try_take() is not None
    now[0] += 100.0  # refill clamps at burst
    assert bucket.try_take() is None
    assert bucket.try_take() is None
    assert bucket.try_take() is not None


def test_client_state_registration_budgets():
    state = ClientState(
        name="c", quota=ClientQuota(max_documents=2, max_registered_bytes=100)
    )
    state.check_register("a", 60)
    state.register("a", "doc-a", 60)
    with pytest.raises(QuotaExceededError):
        state.check_register("b", 60)  # byte budget
    state.check_register("a", 90)  # replacement frees the old bytes
    state.register("b", "doc-b", 30)
    with pytest.raises(QuotaExceededError):
        state.check_register("c", 1)  # document-count cap
    assert state.unregister("a")
    assert not state.unregister("a")
    assert state.gauges()["registered_bytes"] == 30


def test_client_state_in_flight_slots():
    state = ClientState(name="c", quota=ClientQuota(max_in_flight=1))
    state.acquire_slot()
    with pytest.raises(QuotaExceededError) as excinfo:
        state.acquire_slot()
    assert excinfo.value.retry_after is not None
    state.release_slot()
    state.acquire_slot()


# ----------------------------------------------------------------------
# admission pricing
# ----------------------------------------------------------------------


@pytest.fixture()
def service_and_plan():
    service = QueryService()
    return service, service.plan("//book/title"), parse_document(BOOKS)


def test_admission_admits_within_budget(service_and_plan):
    service, plan, document = service_and_plan
    controller = AdmissionController(service)
    decision = controller.decide([plan], [document])
    assert decision.admitted and not decision.degraded
    assert decision.algorithm == "auto" and decision.share
    assert decision.priced_seconds > 0.0


def test_admission_rejects_over_budget_without_retry_hint(service_and_plan):
    service, plan, document = service_and_plan
    controller = AdmissionController(service, max_cost_seconds=0.0)
    decision = controller.decide([plan], [document])
    assert not decision.admitted
    assert decision.retry_after is None  # retrying cannot help


def test_admission_rejects_at_the_high_watermark_with_a_hint(service_and_plan):
    service, plan, document = service_and_plan
    controller = AdmissionController(service, queue_high=4, queue_degrade=2)
    decision = controller.decide([plan], [document], queue_depth=4)
    assert not decision.admitted
    assert decision.retry_after is not None and decision.retry_after > 0


def test_admission_degrades_past_the_degrade_watermark(service_and_plan):
    service, plan, document = service_and_plan
    controller = AdmissionController(service, queue_high=64, queue_degrade=2)
    decision = controller.decide([plan], [document], queue_depth=2)
    assert decision.admitted and decision.degraded
    assert not decision.share  # sharing is dropped under pressure
    # Single-query degrade forces a concrete cheapest algorithm.
    assert decision.algorithm in ("mincontext", "optmincontext", "corexpath")
    # Batch degrade keeps per-cell auto but still drops sharing.
    batch = controller.decide([plan, plan], [document], queue_depth=2)
    assert batch.admitted and batch.degraded
    assert batch.algorithm == "auto" and not batch.share


def test_admission_candidates_respect_the_fragment(service_and_plan):
    service, _, document = service_and_plan
    outside_core = service.plan("count(//book)")  # function call: not Core
    assert not outside_core.is_core_xpath
    assert "corexpath" not in AdmissionController._candidates(outside_core)
    controller = AdmissionController(service, queue_high=64, queue_degrade=0)
    decision = controller.decide([outside_core], [document])
    assert decision.degraded
    assert decision.algorithm in ("mincontext", "optmincontext")


def test_admission_deadline_tightens_the_budget(service_and_plan):
    service, plan, document = service_and_plan
    controller = AdmissionController(service, max_cost_seconds=60.0)
    assert controller.decide([plan], [document], deadline_seconds=None).admitted
    assert not controller.decide([plan], [document], deadline_seconds=0.0).admitted


# ----------------------------------------------------------------------
# daemon end to end
# ----------------------------------------------------------------------


def test_daemon_query_matches_the_local_engine():
    with running_daemon() as daemon:
        with ServeClient(port=daemon.port, client="alice") as client:
            assert client.ping()["pong"]
            registered = client.register("books", BOOKS)
            assert registered["nodes"] == len(parse_document(BOOKS).nodes)
            response = client.query("//book/title", "books")
            local = XPathEngine(parse_document(BOOKS)).evaluate("//book/title")
            assert response["items"] == [node.path() for node in local]
            assert response["count"] == 2 and not response["degraded"]
            number = client.query("count(//book)", "books")
            assert number["kind"] == "number" and number["value"] == 2.0
        snapshot = daemon.stats.snapshot()
        assert snapshot["completed"] == 2
        assert_identities(snapshot)


def test_daemon_batch_evaluates_every_cell():
    with running_daemon() as daemon:
        with ServeClient(port=daemon.port, client="alice") as client:
            client.register("books", BOOKS)
            client.register("tiny", "<a><b/></a>")
            response = client.batch(["//title", "count(//*)"])
            assert response["completed"] == response["total"] == 4
            assert response["shared"] and not response["degraded"]
            cells = {
                (cell["doc"], cell["query"]): cell for cell in response["cells"]
            }
            assert len(cells) == 4
            assert cells[("tiny", "count(//*)")]["value"] == 2.0


def test_daemon_typed_request_errors():
    with running_daemon() as daemon:
        with ServeClient(port=daemon.port, client="alice") as client:
            client.register("books", BOOKS)
            with pytest.raises(RemoteError) as excinfo:
                client.query("//title", "nope")
            assert excinfo.value.protocol_code == "UNKNOWN_DOCUMENT"
            with pytest.raises(RemoteError) as excinfo:
                client.query("//[", "books")
            assert excinfo.value.protocol_code == "QUERY_SYNTAX"
            with pytest.raises(RemoteError) as excinfo:
                client.request("NOPE")
            assert excinfo.value.protocol_code == "UNKNOWN_VERB"
            with pytest.raises(RemoteError) as excinfo:
                client.register("books", "<unclosed>")
            assert excinfo.value.protocol_code == "XML_SYNTAX"
        snapshot = daemon.stats.snapshot()
        assert snapshot["request_errors"] == 2  # the two failed queries
        assert_identities(snapshot)


def test_malformed_frame_gets_a_typed_error_and_the_connection_recovers():
    with running_daemon() as daemon:
        with ServeClient(port=daemon.port) as client:
            client.send_raw(b"this is not json\n")
            response = client.read_response()
            assert response["ok"] is False
            assert response["error"]["code"] == "PROTOCOL"
            # The protocol resynchronizes at the next newline.
            assert client.ping()["pong"]
        assert daemon.stats.snapshot()["malformed"] == 1


def test_rate_limit_is_typed_and_the_retry_hint_works():
    with running_daemon(quota=ClientQuota(rate=20.0, burst=1)) as daemon:
        with ServeClient(port=daemon.port, client="r") as client:
            client.register("d", "<a><b/></a>")
            assert client.query("//b", "d", retry=False)["ok"]
            with pytest.raises(RateLimitedError) as excinfo:
                client.query("//b", "d", retry=False)
            assert excinfo.value.retry_after > 0
            # Honoring the hint (jittered backoff) succeeds.
            assert client.query("//b", "d", retry=True)["ok"]
            assert client.retries >= 1
        snapshot = daemon.stats.snapshot()
        assert snapshot["rejected_rate"] >= 1
        assert_identities(snapshot)


def test_in_flight_quota_is_typed_and_retryable():
    injector = FaultInjector(delay_matching="slow", delay_seconds=0.6)
    service = QueryService()
    with running_daemon(
        service=service,
        injector=injector,
        quota=ClientQuota(max_in_flight=1),
        admission=permissive(service),
    ) as daemon:
        first = ServeClient(port=daemon.port, client="q", timeout=10)
        outcome = {}

        def occupy():
            outcome["first"] = first.query("//slow", "d", retry=False)

        first.register("d", "<a><slow/></a>")
        thread = threading.Thread(target=occupy)
        thread.start()
        time.sleep(0.2)  # the slow query now holds the only slot
        with ServeClient(port=daemon.port, client="q") as second:
            with pytest.raises(QuotaExceededError) as excinfo:
                second.query("//slow", "d", retry=False)
            assert excinfo.value.retry_after is not None
            # The retrying path waits the slot out and succeeds.
            assert second.query("//slow", "d", retry=True)["ok"]
        thread.join(10)
        assert outcome["first"]["ok"]
        first.close()
        snapshot = daemon.stats.snapshot()
        assert snapshot["rejected_quota"] >= 1
        assert_identities(snapshot)


def test_admission_rejects_before_any_evaluation_starts():
    injector = FaultInjector()
    service = QueryService()
    with running_daemon(
        service=service,
        injector=injector,
        admission=AdmissionController(service, max_cost_seconds=0.0),
    ) as daemon:
        with ServeClient(port=daemon.port, client="o") as client:
            client.register("d", BOOKS)
            with pytest.raises(OverloadError) as excinfo:
                client.query("//book", "d", retry=False)
            assert excinfo.value.retry_after is None
            with pytest.raises(OverloadError):
                client.batch(["//book"], ["d"], retry=False)
        snapshot = daemon.stats.snapshot()
        assert snapshot["rejected_overload"] == 2
        # The proof: nothing was evaluated for the rejected requests.
        assert injector.snapshot()["evaluations_started"] == 0
        assert_identities(snapshot)


def test_degraded_admission_still_answers():
    service = QueryService()
    with running_daemon(
        service=service,
        admission=permissive(service, queue_high=64, queue_degrade=0),
    ) as daemon:
        with ServeClient(port=daemon.port, client="g") as client:
            client.register("d", BOOKS)
            response = client.query("//book/title", "d")
            assert response["degraded"]
            assert response["algorithm"] in ("mincontext", "optmincontext", "corexpath")
            local = XPathEngine(parse_document(BOOKS)).evaluate("//book/title")
            assert response["items"] == [node.path() for node in local]
            batch = client.batch(["//title", "//price"], ["d"])
            assert batch["degraded"] and not batch["shared"]
            assert batch["completed"] == batch["total"] == 2
        snapshot = daemon.stats.snapshot()
        assert snapshot["degraded"] == 2 == snapshot["admitted"]
        assert_identities(snapshot)


def test_query_deadline_returns_typed_deadline_not_a_hang():
    injector = FaultInjector(delay_matching="title", delay_seconds=2.0)
    service = QueryService()
    with running_daemon(
        service=service, injector=injector, admission=permissive(service)
    ) as daemon:
        with ServeClient(port=daemon.port, client="d", timeout=10) as client:
            client.register("d", BOOKS)
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.query("//title", "d", deadline_ms=150, retry=False)
            elapsed = time.monotonic() - started
            assert elapsed < 1.5  # answered at the deadline, not after the fault
            # The connection is still usable while the abandoned worker runs.
            assert client.query("//book", "d")["ok"]
        snapshot = daemon.stats.snapshot()
        assert snapshot["deadlined"] == 1 and snapshot["completed"] == 1
        assert_identities(snapshot)


def test_batch_deadline_surfaces_partial_cells():
    service = QueryService()
    with running_daemon(service=service, admission=permissive(service)) as daemon:
        with ServeClient(port=daemon.port, client="b", timeout=10) as client:
            wide = "<r>" + "<x><y/></x>" * 400 + "</r>"
            client.register("d", wide)
            with pytest.raises(DeadlineExceededError) as excinfo:
                client.batch(
                    ["//y", "count(//x)", "//x/y"], ["d"], deadline_ms=1, retry=False
                )
            error = excinfo.value
            assert error.total == 3 and error.completed < error.total
            assert isinstance(error.cells, list)
            assert len(error.cells) == error.completed
        snapshot = daemon.stats.snapshot()
        assert snapshot["deadlined"] == 1
        assert_identities(snapshot)


def test_worker_death_returns_a_typed_error_response():
    injector = FaultInjector(die_matching="book")
    service = QueryService()
    with running_daemon(
        service=service, injector=injector, admission=permissive(service)
    ) as daemon:
        with ServeClient(port=daemon.port, client="w") as client:
            client.register("d", BOOKS)
            with pytest.raises(RemoteError) as excinfo:
                client.query("//book", "d")
            assert excinfo.value.protocol_code == "EVALUATION"
            assert "worker died" in str(excinfo.value)
            assert client.query("//title", "d")["ok"]  # daemon survived
        snapshot = daemon.stats.snapshot()
        assert snapshot["failed"] == 1 and snapshot["completed"] == 1
        assert_identities(snapshot)


def test_non_numeric_deadline_gets_a_typed_protocol_error():
    """An untrusted ``deadline_ms`` must never escape as a bare
    ``ValueError`` that eats the response (regression)."""
    with running_daemon() as daemon:
        with ServeClient(port=daemon.port, client="t") as client:
            client.register("d", BOOKS)
            with pytest.raises(ProtocolError):
                client.request("QUERY", query="//book", doc="d", deadline_ms="fast")
            with pytest.raises(ProtocolError):
                client.request(
                    "BATCH", queries=["//book"], docs=["d"], deadline_ms=[250]
                )
            with pytest.raises(ProtocolError):
                client.request("QUERY", query="//book", doc="d", deadline_ms=True)
            # The connection stays usable after each typed refusal.
            assert client.query("//book", "d")["ok"]
        snapshot = daemon.stats.snapshot()
        assert snapshot["request_errors"] == 3
        assert_identities(snapshot)


def test_batch_worker_death_returns_a_typed_error_and_frees_the_gauge():
    """A non-ReproError escaping batch evaluation must produce a typed
    ``EVALUATION`` response and release the in-flight gauge, or the
    daemon would slowly reject all traffic at the queue watermark
    (regression)."""
    service = QueryService()
    with running_daemon(service=service, admission=permissive(service)) as daemon:
        with ServeClient(port=daemon.port, client="w") as client:
            client.register("d", BOOKS)
            real = daemon.async_service.stream_many

            def dying_stream(*args, **kwargs):
                async def gen():
                    raise RuntimeError("worker died evaluating the batch")
                    yield  # pragma: no cover

                return gen()

            daemon.async_service.stream_many = dying_stream
            with pytest.raises(RemoteError) as excinfo:
                client.batch(["//book"], ["d"])
            assert excinfo.value.protocol_code == "EVALUATION"
            assert "worker died" in str(excinfo.value)
            assert daemon._in_flight == 0
            daemon.async_service.stream_many = real
            assert client.batch(["//title"], ["d"])["ok"]  # daemon survived
        snapshot = daemon.stats.snapshot()
        assert snapshot["failed"] == 1 and snapshot["completed"] == 1
        assert_identities(snapshot)


def test_mid_stream_disconnect_keeps_counters_reconciled():
    injector = FaultInjector(disconnect_matching="price")
    service = QueryService()
    with running_daemon(
        service=service, injector=injector, admission=permissive(service)
    ) as daemon:
        client = ServeClient(port=daemon.port, client="x", timeout=5)
        client.register("d", BOOKS)
        with pytest.raises(ProtocolError):
            client.query("//price", "d", retry=False)
        with contextlib.suppress(ProtocolError, OSError):
            client.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            snapshot = daemon.stats.snapshot()
            if snapshot["completed"] == 1:
                break
            time.sleep(0.05)
        # The response was produced and counted; only its delivery was
        # cut — the identity still closes.
        assert snapshot["completed"] == 1
        assert_identities(snapshot)


def test_register_quota_is_enforced_over_the_wire():
    with running_daemon(
        quota=ClientQuota(max_documents=1, max_registered_bytes=200)
    ) as daemon:
        with ServeClient(port=daemon.port, client="q") as client:
            client.register("a", "<a><b/></a>")
            with pytest.raises(QuotaExceededError):
                client.register("b", "<a><b/></a>")
            # Replacing the same name stays within the document cap.
            client.register("a", "<a><c/></a>")
            assert client.query("//c", "a")["count"] == 1


def test_per_client_quotas_span_connections():
    with running_daemon(quota=ClientQuota(max_documents=1)) as daemon:
        with ServeClient(port=daemon.port, client="same") as first:
            first.register("a", "<a/>")
        with ServeClient(port=daemon.port, client="same") as second:
            # Same identity, new connection: the document survives...
            assert second.query("/a", "a")["count"] == 1
            # ...and so does the quota.
            with pytest.raises(QuotaExceededError):
                second.register("b", "<b/>")


def test_stats_verb_reports_exact_per_client_counters():
    service = QueryService()
    with running_daemon(service=service, admission=permissive(service)) as daemon:
        with ServeClient(port=daemon.port, client="one") as one:
            one.register("d", BOOKS)
            one.query("//book", "d")
            with contextlib.suppress(RemoteError):
                one.query("//title", "missing")
            with ServeClient(port=daemon.port, client="two") as two:
                two.register("d", "<a><b/></a>")
                two.query("//b", "d")
                two.query("//b", "d")
                stats = two.stats()
        snapshot = stats["global"]
        assert_identities(snapshot)
        for client_snapshot in stats["clients"].values():
            assert_identities(client_snapshot)
        # Global counters are the exact per-client sums.
        for key in ("queries", "admitted", "completed", "request_errors"):
            assert snapshot[key] == sum(
                client[key] for client in stats["clients"].values()
            )
        assert stats["clients"]["one"]["request_errors"] == 1
        assert stats["clients"]["two"]["completed"] == 2


def test_anonymous_client_state_is_evicted_at_teardown():
    """Anonymous ``conn:N`` identities can never be addressed again;
    retaining them would leak one ClientState + ServeStats per
    connection for the daemon's lifetime (regression)."""
    with running_daemon() as daemon:
        with ServeClient(port=daemon.port) as client:  # no client name
            assert client.ping()["pong"]
            anonymous = [name for name in daemon._clients if name.startswith("conn:")]
            assert anonymous  # the identity exists while connected
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(name.startswith("conn:") for name in daemon._clients):
                break
            time.sleep(0.05)
        assert not any(name.startswith("conn:") for name in daemon._clients)
        # The evicted identity's counters survive in the aggregate
        # bucket, so global == sum(clients) stays exact.
        with ServeClient(port=daemon.port, client="after") as client:
            stats = client.stats()
        snapshot = stats["global"]
        assert_identities(snapshot)
        assert "(evicted)" in stats["clients"]
        for key in ("queries", "admitted", "completed"):
            assert snapshot[key] == sum(
                client[key] for client in stats["clients"].values()
            )


def test_idle_named_clients_are_evicted_after_the_retention_window():
    """Named-client registrations must not pin memory forever: past the
    retention window an idle disconnected client is dropped, counters
    folded into the ``(evicted)`` bucket (regression)."""
    with running_daemon(client_retention_seconds=0.0) as daemon:
        with ServeClient(port=daemon.port, client="old") as client:
            client.register("d", BOOKS)
            assert client.query("//book", "d")["ok"]
        # A new client's creation triggers the retention sweep.
        with ServeClient(port=daemon.port, client="fresh") as client:
            assert client.ping()["pong"]
            stats = client.stats()
        assert "old" not in daemon._clients
        assert "old" not in stats["clients"]
        evicted = stats["clients"]["(evicted)"]
        assert evicted["completed"] >= 1
        snapshot = stats["global"]
        assert_identities(snapshot)
        for key in ("queries", "admitted", "completed"):
            assert snapshot[key] == sum(
                client[key] for client in stats["clients"].values()
            )


# ----------------------------------------------------------------------
# drain
# ----------------------------------------------------------------------


def test_draining_daemon_refuses_new_work_typed():
    with running_daemon() as daemon:
        with ServeClient(port=daemon.port, client="d") as client:
            client.register("d", BOOKS)
            daemon.draining = True  # flip the flag without tearing down
            with pytest.raises(RemoteError) as excinfo:
                client.query("//book", "d", retry=False)
            assert excinfo.value.protocol_code == "SHUTTING_DOWN"
            with pytest.raises(RemoteError) as excinfo:
                client.register("e", "<a/>")
            assert excinfo.value.protocol_code == "SHUTTING_DOWN"
            daemon.draining = False
            assert client.query("//book", "d")["ok"]
        snapshot = daemon.stats.snapshot()
        assert snapshot["rejected_draining"] == 1
        assert_identities(snapshot)


def test_drain_deadlines_out_stragglers_and_loses_no_responses():
    injector = FaultInjector(delay_matching="slow", delay_seconds=3.0)
    service = QueryService()
    holder = {}
    ready = threading.Event()

    def run():
        async def main():
            daemon = XPathDaemon(
                service=service,
                injector=injector,
                drain_grace=0.4,
                admission=permissive(service),
            )
            await daemon.start()
            holder["daemon"] = daemon
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            await daemon.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    daemon = holder["daemon"]
    client = ServeClient(port=daemon.port, client="z", timeout=10)
    client.register("d", "<a><slow/><fast/></a>")
    outcomes = {}

    def in_flight(key, query):
        try:
            outcomes[key] = client.query(query, "d", retry=False)
        except ReproError as error:
            outcomes[key] = error

    straggler = threading.Thread(target=in_flight, args=("slow", "//slow"))
    straggler.start()
    time.sleep(0.3)  # the slow query is admitted and running
    drain_started = time.monotonic()
    holder["loop"].call_soon_threadsafe(daemon.initiate_drain)
    straggler.join(10)
    thread.join(10)
    drain_elapsed = time.monotonic() - drain_started
    assert not thread.is_alive()
    assert drain_elapsed < 3.0  # bounded by grace, not by the fault
    # The straggler got a typed DEADLINE response, not a dropped socket.
    assert isinstance(outcomes["slow"], DeadlineExceededError)
    snapshot = daemon.stats.snapshot()
    assert snapshot["admitted"] == 1
    assert snapshot["deadlined"] == 1
    assert snapshot["drained"] == 1
    assert_identities(snapshot)


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------


def test_cli_client_round_trip_and_exit_codes(tmp_path, capsys):
    xml_path = tmp_path / "books.xml"
    xml_path.write_text(BOOKS, encoding="utf-8")
    with running_daemon() as daemon:
        port = str(daemon.port)
        code = cli_main(
            [
                "client",
                "--port",
                port,
                "--register",
                f"books={xml_path}",
                "-q",
                "//book/title",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "/lib[1]/book[1]/title[1]" in output
        # Unknown document -> the document-family exit code.
        assert (
            cli_main(["client", "--port", port, "-q", "//b", "--doc", "ghost"]) == 4
        )
        # Bad query -> the query-family exit code, across the wire.
        code = cli_main(
            [
                "client",
                "--port",
                port,
                "--register-xml",
                "t=<a><b/></a>",
                "-q",
                "//[",
            ]
        )
        assert code == 3
        capsys.readouterr()
    # Connection refused (daemon gone) -> the serve-family exit code.
    assert (
        cli_main(["client", "--port", port, "--no-retry", "-q", "//b", "--doc", "x"])
        == 9
    )
    capsys.readouterr()


def test_cli_client_overload_exit_code(capsys):
    service = QueryService()
    with running_daemon(
        service=service,
        admission=AdmissionController(service, max_cost_seconds=0.0),
    ) as daemon:
        code = cli_main(
            [
                "client",
                "--port",
                str(daemon.port),
                "--register-xml",
                "d=<a><b/></a>",
                "-q",
                "//b",
                "--no-retry",
            ]
        )
        assert code == 7
    capsys.readouterr()


@pytest.mark.slow
def test_cli_serve_drains_gracefully_on_sigterm(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--drain-grace",
            "2.0",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stderr.readline()
        assert "listening on" in banner
        port = int(banner.rsplit(":", 1)[1])
        with ServeClient(port=port, client="cli") as client:
            client.register("d", BOOKS)
            assert client.query("//book", "d")["count"] == 2
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=10) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=5)


# ----------------------------------------------------------------------
# soak: skewed many-client workload with fault injection
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_soak_skewed_clients_with_faults_reconcile_exactly():
    """The serve-gates soak: concurrent clients with skewed load, slow
    and dying evaluations, deadlines and rejections — and at the end the
    exact identities close and no client lost a response."""
    injector = FaultInjector(
        delay_matching="sleepy", delay_seconds=0.2, die_matching="doomed"
    )
    service = QueryService()
    with running_daemon(
        service=service,
        injector=injector,
        quota=ClientQuota(max_in_flight=8),
        admission=permissive(service, queue_high=256, queue_degrade=64),
    ) as daemon:
        document = "<lib>" + "<book><sleepy/><doomed/></book>" * 20 + "</lib>"
        plans = [
            ("hot", 30),
            ("warm", 15),
            ("cold", 5),
            ("cold2", 5),
        ]
        results = {}

        def client_run(name, requests):
            sent = received = 0
            with ServeClient(port=daemon.port, client=name, timeout=30) as client:
                client.register("d", document)
                for index in range(requests):
                    kind = index % 5
                    sent += 1
                    try:
                        if kind == 0:
                            client.query(
                                "//sleepy", "d", deadline_ms=40, retry=False
                            )
                        elif kind == 1:
                            client.query("//doomed", "d", retry=False)
                        elif kind == 2:
                            client.batch(["//book", "count(//book)"], ["d"])
                        else:
                            client.query("//book", "d")
                        received += 1
                    except ReproError:
                        received += 1  # a typed response IS a response
                results[name] = (sent, received, client.responses_received)

        threads = [
            threading.Thread(target=client_run, args=(name, count))
            for name, count in plans
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
            assert not thread.is_alive(), "soak client hung"
        # Zero lost responses: every request produced exactly one reply.
        for name, count in plans:
            sent, received, _ = results[name]
            assert sent == count and received == count
        stats = daemon.stats_snapshot()
        snapshot = stats["global"]
        assert_identities(snapshot)
        for client_snapshot in stats["clients"].values():
            assert_identities(client_snapshot)
        for key in ("queries", "admitted", "completed", "deadlined", "failed"):
            assert snapshot[key] == sum(
                client[key] for client in stats["clients"].values()
            )
        # The workload genuinely exercised the failure paths.
        assert snapshot["deadlined"] > 0
        assert snapshot["failed"] > 0
        assert snapshot["completed"] > 0
