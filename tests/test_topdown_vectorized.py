"""Unit tests for Definition 2's *vectorized* semantics: E↓ applied to a
list of contexts at once (the F⟨⟩ construction), which the engine facade
never exercises directly (it always passes singleton lists)."""

import pytest

from repro.core.context import Context
from repro.core.topdown import TopDownEvaluator
from repro.xml.parser import parse_document
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance


@pytest.fixture(scope="module")
def doc():
    return parse_document('<r><a id="1">10</a><a id="2">20</a><a id="3">30</a></r>')


def analyzed(query):
    expr = normalize(parse_xpath(query))
    compute_relevance(expr)
    return expr


def contexts(doc):
    elements = doc.elements()[1:]  # the three a's
    size = len(elements)
    return [Context(node, position, size) for position, node in enumerate(elements, 1)]


def test_vectorized_position_and_last(doc):
    evaluator = TopDownEvaluator(doc)
    assert evaluator._eval(analyzed("position()"), contexts(doc)) == [1.0, 2.0, 3.0]
    assert evaluator._eval(analyzed("last()"), contexts(doc)) == [3.0, 3.0, 3.0]


def test_vectorized_operator_application(doc):
    evaluator = TopDownEvaluator(doc)
    values = evaluator._eval(analyzed("position() * 2 + last()"), contexts(doc))
    assert values == [5.0, 7.0, 9.0]


def test_vectorized_literals_broadcast(doc):
    evaluator = TopDownEvaluator(doc)
    assert evaluator._eval(analyzed("'x'"), contexts(doc)) == ["x", "x", "x"]


def test_vectorized_path_per_context(doc):
    evaluator = TopDownEvaluator(doc)
    results = evaluator._eval(analyzed("self::a"), contexts(doc))
    for context, reachable in zip(contexts(doc), results):
        assert reachable == {context.node}


def test_vectorized_union_is_componentwise(doc):
    evaluator = TopDownEvaluator(doc)
    results = evaluator._eval(
        analyzed("self::a | following-sibling::a"), contexts(doc)
    )
    sizes = [len(r) for r in results]
    assert sizes == [3, 2, 1]


def test_vectorized_string_value_comparisons(doc):
    evaluator = TopDownEvaluator(doc)
    values = evaluator._eval(analyzed(". >= 20"), contexts(doc))
    assert values == [False, True, True]


def test_absolute_path_ignores_individual_contexts(doc):
    evaluator = TopDownEvaluator(doc)
    results = evaluator._eval(analyzed("/r/a"), contexts(doc))
    assert all(len(r) == 3 for r in results)
    assert results[0] == results[1] == results[2]


def test_shared_relation_across_equal_context_nodes(doc):
    """Two contexts with the same node share the step relation rows."""
    evaluator = TopDownEvaluator(doc)
    node = doc.elements()[1]
    duplicated = [Context(node, 1, 2), Context(node, 2, 2)]
    results = evaluator._eval(analyzed("following-sibling::a"), duplicated)
    assert results[0] == results[1]
    assert len(results[0]) == 2
