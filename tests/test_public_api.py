"""API-surface tests: the documented public names import and work.

A downstream user's first contact is ``from repro import ...``; these
tests pin the supported surface so refactors cannot silently break it.
"""

import importlib

import pytest


def test_top_level_all_imports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_imports():
    for module_name in ("repro.xml", "repro.axes", "repro.xpath", "repro.values", "repro.functions"):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


def test_readme_quickstart_verbatim():
    """The README's quickstart snippet must keep working as printed."""
    from repro import XPathEngine, parse_document

    doc = parse_document(
        """
      <library>
        <book year="2003"><title>XPath Evaluation</title><price>25</price></book>
        <book year="1999"><title>Data on the Web</title><price>45</price></book>
      </library>
    """,
        keep_whitespace_text=False,
    )
    engine = XPathEngine(doc)
    titles = engine.evaluate("//book[price < 40]/title")
    assert [n.string_value for n in titles] == ["XPath Evaluation"]
    assert engine.evaluate("sum(//price)") == 70.0
    compiled = engine.compile("//book[position() = last()]")
    assert (compiled.is_core_xpath, compiled.is_extended_wadler) == (False, True)
    assert compiled.best_algorithm() == "optmincontext"
    assert len(engine.evaluate("//book", algorithm="mincontext")) == 2


def test_module_docstring_example():
    """The repro.engine module docstring example."""
    from repro import XPathEngine, parse_document

    doc = parse_document("<a><b id='1'/><b id='2'/></a>")
    engine = XPathEngine(doc)
    nodes = engine.evaluate("/child::a/child::b[position() = last()]")
    assert [n.xml_id for n in nodes] == ["2"]


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_error_hierarchy_rooted_at_repro_error():
    import repro
    from repro.errors import (
        DocumentFrozenError,
        EvaluationError,
        FragmentViolationError,
        ReproError,
        UnknownFunctionError,
        WrongArityError,
        XMLSyntaxError,
        XPathSyntaxError,
        XPathTypeError,
    )
    from repro.xml.store import DocumentStoreError

    for error_type in (
        DocumentFrozenError,
        EvaluationError,
        FragmentViolationError,
        UnknownFunctionError,
        WrongArityError,
        XMLSyntaxError,
        XPathSyntaxError,
        XPathTypeError,
        DocumentStoreError,
    ):
        assert issubclass(error_type, ReproError), error_type


def test_cli_entry_point_module():
    from repro import cli

    parser = cli.build_parser()
    args = parser.parse_args(["//a", "--xml", "<a/>"])
    assert args.query == "//a"
