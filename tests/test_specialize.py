"""Two-stage compilation: the physical-plan specializer.

Three properties matter. *Correctness* — whatever evaluator the cost
model picks, the result must be byte-identical to every legal forced
algorithm (the paper's algorithms agree; specialization only picks among
them), and ``specialize=False`` must reproduce the static fragment
dispatch exactly. *Accounting* — the specializer memo's
hit/miss/eviction counters are exact, like every other cache in the
service layer. *Sanity of the model itself* — the decisions the seed
constants encode (MINCONTEXT on small/selective inputs, OPTMINCONTEXT on
positional-sibling × high-fanout shapes, the guarantee clamps) are
pinned so a constant tweak that silently inverts a decision fails here,
not in a benchmark regression.
"""

import random

import pytest

from repro.engine import XPathEngine
from repro.errors import FragmentViolationError
from repro.service import QueryService, ShardedExecutor, compile_plan
from repro.service.specialize import (
    DocumentProfile,
    PlanSpecializer,
    REPRESENTATIVE_PROFILES,
    cost_units,
    document_profile,
)
from repro.workloads.documents import (
    book_catalog,
    numbered_line,
    random_document,
    running_example_document,
    wide_tree,
)
from repro.workloads.queries import (
    core_family,
    random_core_query,
    random_full_query,
    wadler_family,
)
from repro.xml.parser import parse_document
from repro.xml.statistics import document_statistics


# ----------------------------------------------------------------------
# Profiles and traits
# ----------------------------------------------------------------------


def test_document_profile_matches_statistics():
    document = book_catalog(books=5)
    shape = document_statistics(document)
    profile = DocumentProfile.of(document)
    assert profile.total_nodes == shape.total_nodes == len(document)
    assert profile.max_depth == shape.max_depth
    assert profile.max_fanout == shape.max_fanout
    assert profile.text_ratio == pytest.approx(
        shape.total_text_bytes / shape.total_nodes
    )


def test_document_profile_is_cached_process_wide():
    document = book_catalog(books=3)
    assert document_profile(document) is document_profile(document)


def test_plan_traits_classify_position_dependence():
    no_position = compile_plan("//book[price > 20]/title")
    assert not no_position.traits.uses_position
    assert not no_position.traits.positional_sibling
    assert no_position.traits.ast_size > 1

    positional = compile_plan("/descendant::*[position() = last()]")
    assert positional.traits.uses_position
    assert not positional.traits.positional_sibling

    sibling = compile_plan(wadler_family(2))
    assert sibling.traits.uses_position
    assert sibling.traits.positional_sibling

    strings = compile_plan("//a[contains(string(self::node()), 'x')]")
    assert strings.traits.string_op_count >= 2  # contains + string


def test_inner_position_does_not_leak_to_outer_traits():
    """position() bound by an inner step is resolved there: the outer
    predicate is position-independent and must not set the flags."""
    plan = compile_plan("//a[child::b[position() = 1]]")
    assert not plan.traits.positional_sibling


# ----------------------------------------------------------------------
# Cost-model decisions (pinned against the measured seed constants)
# ----------------------------------------------------------------------


def _specialize(query, profile):
    return PlanSpecializer().specialize(compile_plan(query), profile)


SMALL = DocumentProfile(total_nodes=200, max_depth=5, max_fanout=8, text_ratio=2.0)
BIG = DocumentProfile(total_nodes=9000, max_depth=12, max_fanout=16, text_ratio=2.0)
LINE = DocumentProfile(total_nodes=513, max_depth=3, max_fanout=170, text_ratio=1.0)


def test_core_query_prefers_corexpath_after_the_array_rewrite():
    """PR 5 re-measured the seed constants: the sorted-array Core XPath
    sweep now runs *below* MINCONTEXT's constants at every size, so the
    cost model keeps corexpath on Core queries on merit — small and
    large alike, no clamp needed."""
    small = _specialize(core_family(4), SMALL)
    assert small.algorithm == "corexpath"
    assert not small.clamped
    big = _specialize(core_family(4), BIG)
    assert big.algorithm == "corexpath"
    assert not big.clamped


def test_large_core_query_clamp_overrides_hostile_observed_rates():
    """The Theorem 13 guarantee clamp still backs the choice: even when
    observed timings would steer the model away from corexpath, a large
    Core query defers to the fragment guarantee."""
    specializer = PlanSpecializer()
    plan = compile_plan(core_family(4))
    units = cost_units(plan, BIG, "corexpath")
    for _ in range(PlanSpecializer.MIN_OBSERVATIONS):
        specializer.timings.observe("corexpath", units, 10.0)       # "slow"
        specializer.timings.observe("mincontext", units, 1e-6)      # "fast"
        specializer.timings.observe("optmincontext", units, 1e-6)
    physical = specializer.specialize(plan, BIG)
    assert physical.algorithm == "corexpath"
    assert physical.clamped
    assert "Theorem 13" in physical.rationale


def test_selective_nonpositional_query_prefers_mincontext():
    """The bottom-up pass precomputes whole-document tables a selective
    top-down evaluation never needs — MINCONTEXT wins."""
    physical = _specialize("//book[price > 20]/title", SMALL)
    assert physical.algorithm == "mincontext"


def test_large_wadler_query_clamps_to_optmincontext():
    physical = _specialize("//book[price > 20]/title", BIG)
    assert physical.algorithm == "optmincontext"
    assert physical.clamped
    assert "Corollary 11" in physical.rationale


def test_positional_sibling_on_high_fanout_prefers_optmincontext():
    physical = _specialize(wadler_family(2), LINE)
    assert physical.algorithm == "optmincontext"
    assert not physical.clamped


def test_positional_sibling_on_low_fanout_prefers_mincontext():
    physical = _specialize(wadler_family(2), SMALL)
    assert physical.algorithm == "mincontext"


def test_rationale_names_the_driving_features():
    physical = _specialize(wadler_family(2), LINE)
    assert f"|dom|={LINE.total_nodes}" in physical.rationale
    assert f"fanout={LINE.max_fanout}" in physical.rationale
    assert "positional=sibling" in physical.rationale
    assert dict(physical.estimates).keys() == {"mincontext", "optmincontext"}


def test_core_candidates_include_corexpath():
    physical = _specialize(core_family(4), SMALL)
    assert "corexpath" in dict(physical.estimates)


def test_forced_algorithm_passes_through_and_validates():
    specializer = PlanSpecializer()
    plan = compile_plan("//b[position() = 1]")  # outside Core XPath
    forced = specializer.specialize(plan, SMALL, "topdown")
    assert forced.algorithm == "topdown"
    assert forced.requested == "topdown"
    assert "forced" in forced.rationale
    with pytest.raises(FragmentViolationError):
        specializer.specialize(plan, SMALL, "corexpath")


def test_cost_units_are_monotone_in_document_size():
    plan = compile_plan(core_family(4))
    for algorithm in ("mincontext", "optmincontext", "corexpath"):
        assert cost_units(plan, SMALL, algorithm) < cost_units(plan, BIG, algorithm)


# ----------------------------------------------------------------------
# Memo accounting and online refinement
# ----------------------------------------------------------------------


def test_specializer_memo_counters_are_exact():
    specializer = PlanSpecializer()
    plan = compile_plan("//b")
    for _ in range(3):
        specializer.specialize(plan, SMALL)
    specializer.specialize(plan, BIG)
    stats = specializer.stats
    assert stats.misses == 2          # (plan, SMALL) and (plan, BIG)
    assert stats.hits == 2            # two repeats of (plan, SMALL)
    assert stats.evictions == 0
    assert len(specializer) == 2


def test_specializer_memo_evicts_lru_one_at_a_time():
    """PR 5 satellite: capacity overflow evicts exactly one LRU entry
    (the PlanCache pattern), not the whole memo — hot entries survive."""
    specializer = PlanSpecializer(memo_capacity=2)
    plan = compile_plan("//b")
    profiles = [
        DocumentProfile(total_nodes=n, max_depth=2, max_fanout=2, text_ratio=0.0)
        for n in (10, 20, 30)
    ]
    specializer.specialize(plan, profiles[0])
    specializer.specialize(plan, profiles[1])
    specializer.specialize(plan, profiles[0])   # refresh: now profiles[1] is LRU
    specializer.specialize(plan, profiles[2])   # evicts profiles[1] only
    assert specializer.stats.misses == 3
    assert specializer.stats.hits == 1
    assert specializer.stats.evictions == 1
    assert len(specializer) == 2
    # The refreshed entry survived the eviction; the LRU one did not.
    hits_before = specializer.stats.hits
    specializer.specialize(plan, profiles[0])
    assert specializer.stats.hits == hits_before + 1
    specializer.specialize(plan, profiles[1])
    assert specializer.stats.misses == 4


def test_observed_rates_refine_future_selections():
    """Online refinement: once every candidate has enough observations,
    the per-algorithm seconds-per-unit rates scale the estimates. A
    position-free, bottom-up-free query ties on units, so the observed
    rates decide — and a new (plan, profile) pair flips accordingly."""
    specializer = PlanSpecializer()
    plan = compile_plan("count(//*)")  # units tie: no loops, no bottom-up paths
    baseline = specializer.specialize(plan, SMALL)
    assert baseline.algorithm == "mincontext"  # deterministic tie-break
    units = cost_units(plan, SMALL, "mincontext")
    for _ in range(PlanSpecializer.MIN_OBSERVATIONS):
        specializer.timings.observe("mincontext", units, 1.0)      # slow
        specializer.timings.observe("optmincontext", units, 0.01)  # fast
    fresh_profile = DocumentProfile(
        total_nodes=201, max_depth=5, max_fanout=8, text_ratio=2.0
    )
    refined = specializer.specialize(plan, fresh_profile)
    assert refined.algorithm == "optmincontext"
    assert "observed" in refined.rationale
    # The memoized earlier selection stays pinned — refinement affects
    # future pairs, never past ones.
    assert specializer.specialize(plan, SMALL).algorithm == "mincontext"


def test_partial_observations_do_not_skew_selection():
    """Rates apply only when every candidate is observed: mixing one
    measured rate with defaults would favor whichever ran first."""
    specializer = PlanSpecializer()
    plan = compile_plan("count(//*)")
    for _ in range(PlanSpecializer.MIN_OBSERVATIONS):
        specializer.timings.observe("optmincontext", 100.0, 1e-9)
    assert specializer.specialize(plan, SMALL).algorithm == "mincontext"


def test_session_evaluations_feed_the_timing_model():
    service = QueryService()
    document = book_catalog(books=3)
    service.evaluate("//book/title", document)
    snapshot = service.specializer.timings.snapshot()
    assert sum(entry["observations"] for entry in snapshot.values()) == 1
    assert service.cache_stats()["specialize_cache"]["misses"] == 1


# ----------------------------------------------------------------------
# Correctness: specialized auto vs every legal forced algorithm
# ----------------------------------------------------------------------

FIVE = ("naive", "bottomup", "topdown", "mincontext", "optmincontext")


def _fuzz_corpus():
    rng = random.Random(20030613)
    queries = [random_core_query(rng, max_steps=3) for _ in range(8)]
    queries += [random_full_query(rng, max_steps=3) for _ in range(12)]
    queries += [
        core_family(3),
        wadler_family(1),
        "//b[. > 1]",
        "count(//*)",
        "/descendant::*[position() = last()]",
    ]
    documents = [
        running_example_document(),
        wide_tree(width=5),
        parse_document('<a id="1">x<b id="2"><a id="3">100</a></b><b id="4">2</b></a>'),
        random_document(rng, max_nodes=14),
    ]
    return queries, documents


def test_specialized_auto_matches_every_legal_forced_algorithm():
    """The satellite's headline gate: for every fuzz-corpus (query,
    document) pair, the specialized ``auto`` result is byte-identical to
    every legal forced algorithm (all six inside Core XPath)."""
    queries, documents = _fuzz_corpus()
    service = QueryService()
    assert service.specialize
    for document in documents:
        engine = XPathEngine(document)
        for query in queries:
            specialized = service.evaluate(query, document)
            compiled = engine.compile(query)
            names = FIVE + (("corexpath",) if compiled.is_core_xpath else ())
            for name in names:
                forced = engine.evaluate(compiled, algorithm=name)
                assert specialized == forced, (query, name)


def test_no_specialize_reproduces_static_dispatch_exactly():
    """``specialize=False`` must *be* the old behavior: every auto
    resolution equals the plan's static fragment dispatch, and the
    values match the specialized service's."""
    queries, documents = _fuzz_corpus()
    static = QueryService(specialize=False)
    specialized = QueryService()
    assert static.specializer is None
    for document in documents:
        session = static.session(document)
        for query in queries:
            plan = static.plan(query)
            assert session.resolve(plan) == plan.best_algorithm()
            assert static.evaluate(query, document) == specialized.evaluate(
                query, document
            )
    assert "specialize_cache" not in static.cache_stats()


def test_specialization_is_identical_across_backends():
    """Sharded workers inherit the parent's specialize setting through
    the service config, so every backend returns the same values."""
    queries, documents = _fuzz_corpus()
    queries = queries[:6]
    documents = documents[:3]
    sequential = QueryService().evaluate_many(queries, documents)
    for backend in ("serial", "thread", "process", "async"):
        for specialize in (True, False):
            executor = ShardedExecutor(
                workers=2, backend=backend, specialize=specialize
            )
            assert executor.service_config["specialize"] is specialize
            batch = executor.execute(queries, documents)
            assert batch.values == sequential.values, (backend, specialize)


def test_engine_specialize_flag_matches_static_values():
    document = book_catalog(books=4)
    static_engine = XPathEngine(document)
    specialized_engine = XPathEngine(document, specialize=True)
    for query in ("//book/title", core_family(3), "//book[price > 20]",
                  "/descendant::*[position() = last()]"):
        assert specialized_engine.evaluate(query) == static_engine.evaluate(query)


def test_plan_cache_counters_stay_exact_under_the_split():
    """The two-stage split must not change plan-cache accounting: one
    lookup per evaluate call, every miss a compile, every overflow an
    eviction."""
    service = QueryService(plan_capacity=2)
    document = running_example_document()
    queries = ["//b", "//c", "count(//*)"]  # 3 distinct > capacity 2
    for _ in range(2):
        for query in queries:
            service.evaluate(query, document)
    plan_stats = service.plans.stats
    assert plan_stats.hits + plan_stats.misses == 6
    assert plan_stats.misses - plan_stats.evictions == len(service.plans)
    assert len(service.plans) <= 2


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def _run_cli(capsys, *argv):
    from repro.cli import main

    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_plan_explain_without_document(capsys):
    code, out, _ = _run_cli(capsys, "plan", "--explain", "//book[price > 20]/title")
    assert code == 0
    assert "physical specialization" in out
    assert "chosen algorithm:" in out
    assert "rationale:" in out
    for label, _ in REPRESENTATIVE_PROFILES:
        assert f"[{label}]" in out


def test_cli_plan_explain_with_document_names_profile_and_choice(capsys):
    code, out, _ = _run_cli(
        capsys,
        "plan",
        "--explain",
        "--xml",
        "<a><b>1</b><b>2</b></a>",
        "//b[. > 1]",
    )
    assert code == 0
    assert "[given document]" in out
    assert "|dom|=6" in out
    assert "chosen algorithm: mincontext" in out
    assert "bottomup-paths=1" in out


def test_cli_plan_document_implies_explain(capsys):
    """A document handed to ``plan`` is a question about that document —
    it must never be silently ignored just because --explain was not
    spelled out."""
    code, out, _ = _run_cli(capsys, "plan", "--xml", "<a><b/></a>", "//b")
    assert code == 0
    assert "physical specialization" in out
    assert "[given document]" in out


def test_cli_batch_no_specialize_is_value_identical(capsys):
    argv = [
        "batch",
        "--xml", "<a><b>1</b><b>2</b></a>",
        "--xml", "<a><c>9</c></a>",
        "-q", "//b[. > 1]",
        "-q", "count(//*)",
    ]
    code_spec, out_spec, _ = _run_cli(capsys, *argv)
    code_static, out_static, _ = _run_cli(capsys, *argv, "--no-specialize")
    assert code_spec == code_static == 0
    assert out_spec == out_static


def test_cli_batch_stats_reports_specializer_counters(capsys):
    code, _, err = _run_cli(
        capsys,
        "batch",
        "--xml", "<a><b>1</b></a>",
        "-q", "//b", "-q", "//b",
        "--stats",
    )
    assert code == 0
    assert "specializer:" in err
    code, _, err = _run_cli(
        capsys,
        "batch",
        "--xml", "<a><b>1</b></a>",
        "-q", "//b",
        "--stats",
        "--no-specialize",
    )
    assert code == 0
    assert "specializer:" not in err
