"""Property-based tests for the value system (numbers, strings, compare)."""

import math

from hypothesis import given, settings, strategies as st

from repro.values.compare import compare_values
from repro.values.numbers import (
    number_to_string,
    to_number,
    xpath_ceiling,
    xpath_floor,
    xpath_round,
)
from repro.functions.library import apply_function

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


@given(finite_floats)
def test_number_string_round_trip(value):
    """to_number(number_to_string(v)) == v for finite doubles."""
    text = number_to_string(value)
    assert "e" not in text and "E" not in text
    back = to_number(text)
    assert back == value or math.isclose(back, value, rel_tol=1e-15)


@given(finite_floats)
def test_floor_ceiling_round_are_integral_and_ordered(value):
    floor = xpath_floor(value)
    ceiling = xpath_ceiling(value)
    rounded = xpath_round(value)
    assert floor == int(floor)
    assert ceiling == int(ceiling)
    assert floor <= value <= ceiling
    assert floor <= rounded <= ceiling
    assert abs(rounded - value) <= 0.5


@given(st.text(max_size=30))
def test_to_number_never_raises(text):
    result = to_number(text)
    assert isinstance(result, float)


@given(st.text(max_size=20), st.text(max_size=5))
def test_substring_before_after_partition(haystack, needle):
    doc = None  # functions under test ignore the document
    if needle and needle in haystack:
        before = apply_function(doc, "substring-before", [haystack, needle])
        after = apply_function(doc, "substring-after", [haystack, needle])
        assert before + needle + after == haystack


@given(st.text(max_size=30))
def test_normalize_space_idempotent(text):
    once = apply_function(None, "normalize-space", [text])
    twice = apply_function(None, "normalize-space", [once])
    assert once == twice
    assert "  " not in once
    assert once == once.strip()


@given(st.text(max_size=15), st.text(max_size=6), st.text(max_size=6))
def test_translate_output_alphabet(source, from_chars, to_chars):
    result = apply_function(None, "translate", [source, from_chars, to_chars])
    removed = set(from_chars[len(to_chars):])
    kept_map = {f: t for f, t in zip(from_chars, to_chars)}
    for char in result:
        assert char not in removed or char in kept_map.values() or char not in from_chars


@given(st.text(max_size=10), st.integers(-5, 15), st.integers(-5, 15))
def test_substring_is_contiguous(source, start, length):
    result = apply_function(None, "substring", [source, float(start), float(length)])
    assert result in source  # contiguity: any substring output occurs verbatim


_SCALARS = st.one_of(
    st.booleans(),
    finite_floats,
    st.text(max_size=8),
)


def _type_of(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, float):
        return "num"
    return "str"


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@settings(max_examples=200)
@given(_SCALARS, _SCALARS, st.sampled_from(sorted(_FLIP)))
def test_scalar_comparison_flip_symmetry(left, right, op):
    forward = compare_values(op, left, _type_of(left), right, _type_of(right))
    backward = compare_values(_FLIP[op], right, _type_of(right), left, _type_of(left))
    assert forward == backward


@settings(max_examples=200)
@given(_SCALARS, _SCALARS)
def test_equality_and_inequality_complementary_without_nan(left, right):
    if isinstance(left, float) and math.isnan(left):
        return
    if isinstance(right, float) and math.isnan(right):
        return
    eq = compare_values("=", left, _type_of(left), right, _type_of(right))
    ne = compare_values("!=", left, _type_of(left), right, _type_of(right))
    assert eq != ne
