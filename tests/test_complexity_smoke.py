"""Complexity smoke tests: abstract operation counts must scale the way the
theorems promise (coarse ratios on two document sizes — the full curves
live in the benchmark harness)."""

import pytest

from repro import stats
from repro.engine import XPathEngine
from repro.workloads.documents import (
    doubling_document,
    numbered_line,
    wide_tree,
)
from repro.workloads.queries import core_family, doubling_query, wadler_family


def measure(engine, query, algorithm, counter=None):
    with stats.collect() as collected:
        engine.evaluate(query, algorithm=algorithm)
    return collected


def test_exponential_naive_vs_flat_mincontext():
    """EXP-X1's mechanism: +2 doubling pairs ≈ ×4 naive work; MINCONTEXT
    grows linearly in |Q|."""
    engine = XPathEngine(doubling_document())
    naive_counts = [
        measure(engine, doubling_query(pairs), "naive").get("naive_step_contexts")
        for pairs in (4, 6, 8)
    ]
    assert naive_counts[1] / naive_counts[0] > 3.0
    assert naive_counts[2] / naive_counts[1] > 3.0
    min_counts = [
        measure(engine, doubling_query(pairs), "mincontext").get(
            "mincontext_contexts_evaluated"
        )
        for pairs in (4, 8)
    ]
    assert min_counts[1] <= min_counts[0] * 3  # linear-ish in |Q|


def test_wadler_space_is_linear_in_document():
    """Theorem 10: peak live table cells grow ~linearly with |D| for
    Extended Wadler queries under OPTMINCONTEXT."""
    query = wadler_family(2)
    peaks = []
    for width in (20, 40, 80):
        engine = XPathEngine(numbered_line(width))
        collected = measure(engine, query, "optmincontext")
        peaks.append(collected.peak_table_cells)
    # Doubling |D| should at most ~double+slack the peak, never square it.
    assert peaks[1] <= peaks[0] * 3.0
    assert peaks[2] <= peaks[1] * 3.0


def test_topdown_space_grows_faster_than_mincontext():
    """Section 3's headline: E↓ materializes every predicate context as a
    table row; MINCONTEXT's loop keeps the live cell count far smaller."""
    query = "/child::*/child::*[position() > last()*0.5]"
    engine = XPathEngine(wide_tree(60))
    topdown = measure(engine, query, "topdown").peak_table_cells
    mincontext = measure(engine, query, "mincontext").peak_table_cells
    assert mincontext * 5 < topdown


def test_corexpath_linear_steps():
    """Theorem 13: the Core XPath evaluator performs O(|π|) set sweeps,
    independent of |D|."""
    query = core_family(3)
    for width in (10, 80):
        engine = XPathEngine(wide_tree(width))
        collected = measure(engine, query, "corexpath")
        assert collected.get("corexpath_steps") <= 20


def test_bottomup_full_tables_are_cubic():
    """Section 3.1: strict E↑ tabulates Θ(|D|³) rows for scalar nodes."""
    engine_small = XPathEngine(wide_tree(4))   # |dom| = 4 + root + texts + attrs
    engine_large = XPathEngine(wide_tree(8))
    query = "//*[position() = 1]"
    small = measure(engine_small, query, "bottomup").get("bottomup_table_rows")
    large = measure(engine_large, query, "bottomup").get("bottomup_table_rows")
    d_small = len(engine_small.document.nodes)
    d_large = len(engine_large.document.nodes)
    ratio = large / small
    expected = (d_large / d_small) ** 3
    assert ratio > expected * 0.4  # cubic growth, generous slack


def test_mincontext_tables_linear_per_node():
    """Theorem 7's space proof: every stored table has at most |dom| rows."""
    from repro.core.context import Context
    from repro.core.mincontext import MinContextEvaluator
    from repro.xpath.normalize import normalize
    from repro.xpath.parser import parse_xpath
    from repro.xpath.relevance import compute_relevance

    doc = numbered_line(30)
    ast = normalize(parse_xpath(wadler_family(2)))
    compute_relevance(ast)
    mc = MinContextEvaluator(doc)
    mc.evaluate(ast, Context(doc.root))
    for uid, table in mc.tables.items():
        assert len(table) <= len(doc.nodes), uid
