"""Tests for the programmatic builders and the serializer round-trip."""

import pytest

from repro.errors import ReproError
from repro.xml.builder import DocumentBuilder, comment, element, processing_instruction, text
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize, serialize_node


def test_builder_basic_tree():
    builder = DocumentBuilder()
    builder.start("a", id="1")
    builder.leaf("b", "hello", attributes={"id": "2"})
    builder.comment("note")
    builder.processing_instruction("pi", "data")
    builder.end()
    doc = builder.build()
    a = doc.root_element
    assert a.name == "a"
    assert a.xml_id == "1"
    b = a.children[0]
    assert b.string_value == "hello"
    assert a.children[1].is_comment
    assert a.children[2].is_processing_instruction


def test_builder_depth_tracking():
    builder = DocumentBuilder()
    assert builder.depth == 0
    builder.start("a")
    builder.start("b")
    assert builder.depth == 2
    builder.end()
    assert builder.depth == 1


def test_builder_rejects_unbalanced_build():
    builder = DocumentBuilder()
    builder.start("a")
    with pytest.raises(ReproError):
        builder.build()


def test_builder_rejects_extra_end():
    builder = DocumentBuilder()
    builder.leaf("a")
    with pytest.raises(ReproError):
        builder.end()


def test_builder_rejects_top_level_text():
    builder = DocumentBuilder()
    with pytest.raises(ReproError):
        builder.text("loose")


def test_builder_rejects_empty_document():
    with pytest.raises(ReproError):
        DocumentBuilder().build()


def test_builder_rejects_double_build():
    builder = DocumentBuilder()
    builder.leaf("a")
    builder.build()
    with pytest.raises(ReproError):
        builder.build()


def test_declarative_builder():
    doc = element(
        "a",
        {"id": "1"},
        element("b", {}, text("hi")),
        comment("c"),
        processing_instruction("p", "d"),
        "bare string becomes text",
    ).build()
    a = doc.root_element
    assert a.children[0].children[0].value == "hi"
    assert a.children[1].is_comment
    assert a.children[2].is_processing_instruction
    assert a.children[3].is_text


def test_serialize_simple():
    doc = parse_document('<a x="1"><b/>text</a>')
    assert serialize(doc) == '<a x="1"><b/>text</a>'


def test_serialize_escapes_text_and_attributes():
    doc = element("a", {"x": 'va"l<'}, text("a<b&c>d")).build()
    out = serialize(doc)
    assert out == '<a x="va&quot;l&lt;">a&lt;b&amp;c&gt;d</a>'


def test_serialize_comment_and_pi():
    doc = parse_document("<a><!--n--><?p d?></a>")
    assert serialize(doc) == "<a><!--n--><?p d?></a>"


def test_serialize_with_declaration():
    doc = parse_document("<a/>")
    assert serialize(doc, xml_declaration=True) == '<?xml version="1.0"?><a/>'


def test_serialize_single_node():
    doc = parse_document("<a><b>x</b></a>")
    assert serialize_node(doc.root_element.children[0]) == "<b>x</b>"


def test_round_trip_preserves_structure():
    source = '<a id="1"><b k="v&amp;w">one<c/>two</b><!--n--><?pi data?></a>'
    doc = parse_document(source)
    again = parse_document(serialize(doc))
    assert serialize(again) == serialize(doc)
    assert len(again) == len(doc)
