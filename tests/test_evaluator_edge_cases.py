"""Edge-case semantics: attribute nodes in paths, unicode, odd documents,
deep nesting, and spec corner cases — each asserted against explicit
expectations and cross-checked across algorithms."""

import math

import pytest

from repro.engine import XPathEngine
from repro.xml.parser import parse_document

ALGORITHMS = ("naive", "topdown", "mincontext", "optmincontext")


def make_engine(xml, **kw):
    return XPathEngine(parse_document(xml, **kw))


def evaluate_all(engine, query, **kw):
    results = [engine.evaluate(query, algorithm=a, **kw) for a in ALGORITHMS]
    first = results[0]
    for algorithm, value in zip(ALGORITHMS[1:], results[1:]):
        if isinstance(first, float) and math.isnan(first):
            assert isinstance(value, float) and math.isnan(value), algorithm
        else:
            assert value == first, algorithm
    return first


# --- attributes in paths --------------------------------------------------------

def test_attribute_then_parent():
    engine = make_engine('<a><b k="1"/><b k="2"/></a>')
    got = evaluate_all(engine, "//@k/..")
    assert [n.name for n in got] == ["b", "b"]


def test_attribute_string_and_number():
    engine = make_engine('<a k="42"/>')
    assert evaluate_all(engine, "number(//@k)") == 42.0
    assert evaluate_all(engine, "string(/a/@k)") == "42"


def test_attribute_positions():
    engine = make_engine('<a x="1" y="2" z="3"/>')
    got = evaluate_all(engine, "/a/attribute::*[2]")
    assert [n.name for n in got] == ["y"]
    assert evaluate_all(engine, "count(/a/@*)") == 3.0


def test_attributes_not_children():
    engine = make_engine('<a k="v"><b/></a>')
    assert evaluate_all(engine, "count(/a/node())") == 1.0
    assert evaluate_all(engine, "count(/a/descendant::node())") == 1.0


def test_attribute_ancestors():
    engine = make_engine('<a><b k="v"/></a>')
    got = evaluate_all(engine, "//@k/ancestor::*")
    assert [n.name for n in got] == ["a", "b"]


def test_wildcard_on_attribute_axis_selects_attributes_only():
    engine = make_engine('<a k="v">text</a>')
    got = evaluate_all(engine, "/a/@*")
    assert len(got) == 1 and got[0].is_attribute


# --- unicode and odd content ------------------------------------------------------

def test_unicode_content_and_comparison():
    engine = make_engine("<r><w>héllo wörld</w><w>日本語</w></r>")
    got = evaluate_all(engine, "//w[. = '日本語']")
    assert len(got) == 1
    assert evaluate_all(engine, "string-length(//w[1])") == 11.0


def test_entity_decoded_values_in_queries():
    engine = make_engine("<r><v>&lt;tag&gt;</v></r>")
    got = evaluate_all(engine, "//v[. = '<tag>']")
    assert len(got) == 1


def test_whitespace_only_text_nodes_are_real_nodes():
    engine = make_engine("<a> <b/> </a>")
    assert evaluate_all(engine, "count(/a/text())") == 2.0
    assert evaluate_all(engine, "normalize-space(/a)") == ""


# --- numeric string-value corners ---------------------------------------------------

def test_negative_numbers_in_content():
    engine = make_engine("<r><n>-5</n><n>3</n></r>")
    got = evaluate_all(engine, "//n[. < 0]")
    assert len(got) == 1
    assert evaluate_all(engine, "sum(//n)") == -2.0


def test_decimal_strings():
    engine = make_engine("<r><n>2.5</n></r>")
    assert evaluate_all(engine, "//n > 2") is True
    assert evaluate_all(engine, "floor(//n)") == 2.0


def test_unparsable_numeric_comparisons_are_false():
    engine = make_engine("<r><n>abc</n></r>")
    assert evaluate_all(engine, "//n > 0") is False
    assert evaluate_all(engine, "//n < 0") is False
    assert evaluate_all(engine, "boolean(//n != 0)") is True  # NaN != 0


# --- structure corners ---------------------------------------------------------------

def test_single_element_document():
    engine = make_engine("<only/>")
    assert evaluate_all(engine, "count(//*)") == 1.0
    assert evaluate_all(engine, "//only/following::*") == []
    assert evaluate_all(engine, "name(/*)") == "only"


def test_deeply_nested_query_on_deep_document():
    depth = 30
    xml = "".join(f"<l{i}>" for i in range(depth)) + "x" + "".join(
        f"</l{i}>" for i in reversed(range(depth))
    )
    engine = make_engine(xml)
    assert evaluate_all(engine, "count(//*)") == float(depth)
    deepest = evaluate_all(engine, f"//l{depth - 1}")
    assert len(deepest) == 1
    assert evaluate_all(engine, f"count(//l{depth - 1}/ancestor::*)") == float(depth - 1)


def test_absolute_path_from_deep_context():
    engine = make_engine("<a><b><c/></b></a>")
    c = engine.document.root_element.children[0].children[0]
    got = evaluate_all(engine, "/a/b", context_node=c)
    assert [n.name for n in got] == ["b"]


def test_mixed_siblings_positions_by_kind():
    engine = make_engine("<r>alpha<x/>beta<x/>gamma</r>")
    # text() positions count text nodes only.
    got = evaluate_all(engine, "/r/text()[2]")
    assert got[0].value == "beta"
    got = evaluate_all(engine, "/r/x[2]/preceding-sibling::text()[1]")
    assert got[0].value == "beta"


def test_following_crosses_subtrees():
    engine = make_engine("<r><a><b/></a><c><d/></c></r>")
    got = evaluate_all(engine, "//b/following::*")
    assert [n.name for n in got] == ["c", "d"]
    got = evaluate_all(engine, "//d/preceding::*")
    assert [n.name for n in got] == ["a", "b"]


# --- boolean/logic corners --------------------------------------------------------------

def test_and_or_with_node_sets():
    engine = make_engine("<r><a/><b/></r>")
    assert evaluate_all(engine, "boolean(//a and //b)") is True
    assert evaluate_all(engine, "boolean(//a and //zz)") is False
    assert evaluate_all(engine, "boolean(//zz or //b)") is True


def test_not_of_empty_set_is_true():
    engine = make_engine("<r/>")
    assert evaluate_all(engine, "not(//missing)") is True


def test_predicates_on_multiple_axes_in_one_query():
    engine = make_engine(
        '<r><s><t id="1">5</t><t id="2">7</t></s><s><t id="3">7</t></s></r>'
    )
    got = evaluate_all(
        engine, "//t[. = 7][parent::s[count(t) > 1]]/preceding-sibling::t"
    )
    assert [n.xml_id for n in got] == ["1"]


def test_union_of_different_kinds():
    engine = make_engine('<r k="v">text<!--c--></r>')
    got = evaluate_all(engine, "/r/@k | /r/text() | /r/comment()")
    kinds = [n.kind.value for n in got]
    assert kinds == ["attribute", "text", "comment"]


def test_last_on_empty_candidate_set():
    engine = make_engine("<r/>")
    assert evaluate_all(engine, "//missing[position() = last()]") == []


def test_chained_predicates_with_last_arithmetic():
    engine = make_engine("<r>" + "".join(f"<i>{k}</i>" for k in range(1, 8)) + "</r>")
    got = evaluate_all(engine, "//i[position() > last() div 2][position() < last()]")
    assert [n.string_value for n in got] == ["4", "5", "6"]
