"""Tests for the XML tokenizer."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml.lexer import XMLTokenType, tokenize


def types(source):
    return [t.type for t in tokenize(source)]


def test_simple_element_pair():
    tokens = tokenize("<a>hello</a>")
    assert [t.type for t in tokens] == [
        XMLTokenType.START_TAG,
        XMLTokenType.TEXT,
        XMLTokenType.END_TAG,
    ]
    assert tokens[0].value == "a"
    assert tokens[1].value == "hello"
    assert tokens[2].value == "a"


def test_empty_tag():
    (token,) = tokenize("<br/>")
    assert token.type is XMLTokenType.EMPTY_TAG
    assert token.value == "br"


def test_attributes_in_source_order():
    (token,) = tokenize('<a x="1" y="2"/>')
    assert token.attributes == [("x", "1"), ("y", "2")]


def test_single_quoted_attribute():
    (token,) = tokenize("<a x='v a l'/>")
    assert token.attributes == [("x", "v a l")]


def test_attribute_whitespace_around_equals():
    (token,) = tokenize('<a x = "1"/>')
    assert token.attributes == [("x", "1")]


def test_duplicate_attribute_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize('<a x="1" x="2"/>')


def test_unquoted_attribute_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize("<a x=1/>")


def test_predefined_entities_expanded():
    tokens = tokenize("<a>&lt;&amp;&gt;&quot;&apos;</a>")
    assert tokens[1].value == "<&>\"'"


def test_character_references():
    tokens = tokenize("<a>&#65;&#x42;</a>")
    assert tokens[1].value == "AB"


def test_entities_in_attribute_values():
    (token,) = tokenize('<a x="&amp;&#33;"/>')
    assert token.attributes == [("x", "&!")]


def test_unknown_entity_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize("<a>&nosuch;</a>")


def test_unterminated_entity_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize("<a>&amp</a>")


def test_comment_token():
    tokens = tokenize("<a><!-- note --></a>")
    assert tokens[1].type is XMLTokenType.COMMENT
    assert tokens[1].value == " note "


def test_double_hyphen_in_comment_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize("<a><!-- a -- b --></a>")


def test_cdata_is_literal_text():
    tokens = tokenize("<a><![CDATA[<not&parsed;>]]></a>")
    assert tokens[1].type is XMLTokenType.TEXT
    assert tokens[1].value == "<not&parsed;>"


def test_processing_instruction():
    tokens = tokenize('<a><?target some data?></a>')
    pi = tokens[1]
    assert pi.type is XMLTokenType.PROCESSING_INSTRUCTION
    assert pi.value == "target"
    assert pi.attributes == [("data", "some data")]


def test_xml_declaration_recognized():
    tokens = tokenize('<?xml version="1.0"?><a/>')
    assert tokens[0].type is XMLTokenType.DECLARATION


def test_doctype_skipped_as_token():
    tokens = tokenize("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>")
    assert tokens[0].type is XMLTokenType.DOCTYPE
    assert tokens[1].type is XMLTokenType.EMPTY_TAG


def test_unterminated_comment_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize("<a><!-- oops</a>")


def test_unterminated_start_tag_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize("<a")


def test_cdata_end_in_text_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize("<a>]]></a>")


def test_lt_in_attribute_rejected():
    with pytest.raises(XMLSyntaxError):
        tokenize('<a x="<"/>')


def test_error_carries_line_and_column():
    with pytest.raises(XMLSyntaxError) as info:
        tokenize("<a>\n<b x=1/></a>")
    assert info.value.line == 2


def test_names_with_colons_dots_dashes():
    (token,) = tokenize("<ns:tag-name.x/>")
    assert token.value == "ns:tag-name.x"
