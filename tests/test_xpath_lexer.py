"""Tests for the XPath tokenizer, especially the §3.7 disambiguation rules."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import TokenType, tokenize_xpath


def tokens(source):
    return tokenize_xpath(source)[:-1]  # drop END sentinel


def kinds(source):
    return [(t.type, t.value) for t in tokens(source)]


def test_simple_step():
    assert kinds("child::a") == [
        (TokenType.AXIS_NAME, "child"),
        (TokenType.COLONCOLON, "::"),
        (TokenType.NAME, "a"),
    ]


def test_star_after_coloncolon_is_wildcard():
    got = kinds("descendant::*")
    assert got[-1] == (TokenType.STAR, "*")


def test_star_after_expression_is_multiplication():
    got = kinds("last()*0.5")
    assert (TokenType.OPERATOR, "*") in got
    assert got[-1] == (TokenType.NUMBER, "0.5")


def test_star_at_start_is_wildcard():
    assert kinds("*")[0] == (TokenType.STAR, "*")


def test_star_after_open_paren_and_bracket_is_wildcard():
    assert kinds("(*")[-1] == (TokenType.STAR, "*")
    assert kinds("a[*")[-1] == (TokenType.STAR, "*")


def test_star_after_operator_is_wildcard():
    got = kinds("a | *")
    assert got[-1] == (TokenType.STAR, "*")


def test_and_or_div_mod_in_operator_position():
    got = kinds("1 and 2 or 3 div 4 mod 5")
    ops = [v for t, v in got if t is TokenType.OPERATOR]
    assert ops == ["and", "or", "div", "mod"]


def test_and_as_name_test_in_name_position():
    # At expression start, 'and' is a name test, not an operator.
    got = kinds("and")
    assert got == [(TokenType.NAME, "and")]


def test_div_as_element_name_after_slash():
    got = kinds("a/div")
    assert got[-1] == (TokenType.NAME, "div")


def test_unexpected_name_in_operator_position_rejected():
    with pytest.raises(XPathSyntaxError):
        tokenize_xpath("1 frob 2")


def test_function_name_classification():
    got = kinds("count(a)")
    assert got[0] == (TokenType.FUNCTION_NAME, "count")


def test_node_type_names_stay_names():
    got = kinds("node()")
    assert got[0] == (TokenType.NAME, "node")
    got = kinds("text()")
    assert got[0] == (TokenType.NAME, "text")


def test_axis_name_classification_with_whitespace():
    got = kinds("child :: a")
    assert got[0] == (TokenType.AXIS_NAME, "child")


def test_number_forms():
    assert kinds("1")[0] == (TokenType.NUMBER, "1")
    assert kinds("1.5")[0] == (TokenType.NUMBER, "1.5")
    assert kinds(".5")[0] == (TokenType.NUMBER, ".5")
    assert kinds("12.")[0] == (TokenType.NUMBER, "12.")


def test_dot_and_dotdot():
    assert kinds(".")[0][0] is TokenType.DOT
    assert kinds("..")[0][0] is TokenType.DOTDOT
    # '.5' must not lex as DOT NUMBER.
    assert kinds(".5") == [(TokenType.NUMBER, ".5")]


def test_literals_both_quotes():
    assert kinds("'abc'")[0] == (TokenType.LITERAL, "abc")
    assert kinds('"a\'b"')[0] == (TokenType.LITERAL, "a'b")


def test_unterminated_literal_rejected():
    with pytest.raises(XPathSyntaxError):
        tokenize_xpath("'oops")


def test_variable_reference():
    assert kinds("$foo")[0] == (TokenType.VARIABLE, "foo")
    with pytest.raises(XPathSyntaxError):
        tokenize_xpath("$ ")


def test_two_char_operators():
    got = kinds("a != b <= c >= d // e")
    ops = [v for t, v in got if t is TokenType.OPERATOR]
    assert ops == ["!=", "<=", ">=", "//"]


def test_offsets_recorded():
    toks = tokens("ab + cd")
    assert toks[0].offset == 0
    assert toks[1].offset == 3
    assert toks[2].offset == 5


def test_unexpected_character_rejected():
    with pytest.raises(XPathSyntaxError):
        tokenize_xpath("a # b")
