"""Cell-complete reproduction of the remaining Figure 4 tables (N1, N2,
N8, N9) and of the Example 4 simplification ("the result of the absolute
location path e is the same for all possible contexts")."""

import pytest

from repro.core.context import Context
from repro.core.topdown import TopDownEvaluator
from repro.engine import XPathEngine
from repro.workloads.documents import running_example_document
from repro.workloads.queries import running_example_query
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance


@pytest.fixture(scope="module")
def doc():
    return running_example_document()


@pytest.fixture(scope="module")
def engine(doc):
    return XPathEngine(doc)


def x(doc, number):
    return doc.element_by_id(str(number))


def test_figure4_n1_absolute_result_for_every_context(doc, engine):
    """Table N1: the absolute path e gives the same node set for *every*
    context node (the paper fills in only the first row for that reason)."""
    expected = {"13", "14", "21", "22", "23", "24"}
    for context in doc.elements():
        got = engine.evaluate(
            running_example_query(), context_node=context, algorithm="mincontext"
        )
        assert {n.xml_id for n in got} == expected, context.xml_id


def test_figure4_n2_all_empty_rows(doc, engine):
    """Table N2 is empty for every context node outside {x10, x11, x21} —
    the rows the paper omits 'since they have no effect'."""
    query = "descendant::*[position() > last()*0.5 or self::* = 100]"
    nonempty = {"10": 5, "11": 2, "21": 2}
    for element in doc.elements():
        got = engine.evaluate(query, context_node=element, algorithm="topdown")
        assert len(got) == nonempty.get(element.xml_id, 0), element.xml_id


def test_figure4_n8_and_n9_tables(doc):
    """N8 (self::*) maps each context to itself; N9 (100) is constant."""
    ast = normalize(parse_xpath(running_example_query()))
    compute_relevance(ast)
    evaluator = TopDownEvaluator(doc)
    tables = evaluator.trace_tables(ast, Context(doc.root, 1, 1))
    n5 = ast.steps[1].predicates[0].right
    n8, n9 = n5.left, n5.right
    n8_rows = tables[n8.uid]
    assert len(n8_rows) == 14  # same 14 contexts as N3
    for context, value in n8_rows:
        assert value == {context.node}
    for _context, value in tables[n9.uid]:
        assert value == 100.0


def test_figure4_contexts_match_reachable_pairs(doc):
    """The paper: 'the top-down evaluation guarantees that no
    context-value table contains more than |dom|² entries, corresponding
    to all possible pairs of a previous and a current context node'. The
    predicate tables of e have exactly 14 rows — the reachable pairs."""
    ast = normalize(parse_xpath(running_example_query()))
    compute_relevance(ast)
    evaluator = TopDownEvaluator(doc)
    tables = evaluator.trace_tables(ast, Context(doc.root, 1, 1))
    predicate = ast.steps[1].predicates[0]
    assert len(tables[predicate.uid]) == 14
    size = len(doc.nodes)
    for node_tables in tables.values():
        assert len(node_tables) <= size * size


def test_example4_y_read_from_last_step_not_root(doc):
    """Example 4: with outermost set treatment, the final result is read
    from the last location step's set, and equals the paper's Y."""
    engine = XPathEngine(doc)
    got = engine.evaluate(running_example_query(), algorithm="optmincontext")
    assert [n.xml_id for n in got] == ["13", "14", "21", "22", "23", "24"]
