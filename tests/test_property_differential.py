"""Hypothesis-driven differential testing: random documents × random
queries, every algorithm must agree (node-sets exactly, scalars NaN-aware).
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.engine import XPathEngine
from repro.workloads.documents import random_document
from repro.workloads.queries import random_query

_ALGORITHMS = ("naive", "topdown", "mincontext", "optmincontext")


def _equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


@settings(max_examples=50, deadline=None)
@given(
    st.integers(0, 100_000),
    st.integers(0, 100_000),
    st.integers(2, 20),
)
def test_algorithms_agree(doc_seed, query_seed, size):
    doc = random_document(random.Random(doc_seed), max_nodes=size)
    engine = XPathEngine(doc)
    query = random_query(random.Random(query_seed))
    compiled = engine.compile(query)
    outcomes = [
        (name, engine.evaluate(compiled, algorithm=name)) for name in _ALGORITHMS
    ]
    if compiled.is_core_xpath:
        outcomes.append(("corexpath", engine.evaluate(compiled, algorithm="corexpath")))
    baseline_name, baseline = outcomes[0]
    for name, value in outcomes[1:]:
        assert _equal(value, baseline), (
            f"{name} vs {baseline_name} on {query!r}\n{value!r}\n{baseline!r}"
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000), st.integers(0, 100_000))
def test_full_table_bottomup_agrees_on_tiny_documents(doc_seed, query_seed):
    """E↑ is Θ(|D|³) per table, so exercise it only on tiny inputs."""
    doc = random_document(random.Random(doc_seed), max_nodes=7)
    engine = XPathEngine(doc)
    query = random_query(random.Random(query_seed), max_steps=3)
    reference = engine.evaluate(query, algorithm="mincontext")
    full_tables = engine.evaluate(query, algorithm="bottomup")
    assert _equal(full_tables, reference), query
