"""Tests for the service layer: plan cache exactness and batch evaluation.

Two properties matter: *correctness* — a plan served from the cache (and
a result served from a session memo) must produce exactly what a fresh
compilation produces — and *accounting* — the LRU's hit/miss/eviction
counters are exact, because the benchmark's hit-rate claims rest on them.
"""

import pytest

from repro import stats
from repro.engine import XPathEngine
from repro.service import PlanCache, PlanOptions, QueryService, plan_key
from repro.workloads.documents import book_catalog, running_example_document
from repro.xml.parser import parse_document

QUERIES = [
    "//b",
    "/descendant::*[position() = last()]",
    "//c[. > 15]",
    "count(//d)",
    "//b[child::c]/d",
]


@pytest.fixture(scope="module")
def documents():
    return [
        running_example_document(),
        book_catalog(books=3),
        parse_document('<a id="1"><b id="2">10</b><c id="3">20</c></a>'),
    ]


# ----------------------------------------------------------------------
# Correctness: cached plans and memoized results match fresh compilation
# ----------------------------------------------------------------------


def test_plan_reuse_matches_fresh_compilation(documents):
    service = QueryService()
    for document in documents:
        fresh = XPathEngine(document)
        for query in QUERIES:
            first = service.evaluate(query, document)
            second = service.evaluate(query, document)   # plan + result hits
            expected = fresh.evaluate(query)
            assert first == expected, (query,)
            assert second == expected, (query,)


def test_evaluate_many_matches_per_query_engines(documents):
    service = QueryService()
    batch = service.evaluate_many(QUERIES, documents)
    assert batch.document_count == len(documents)
    for doc_index, document in enumerate(documents):
        fresh = XPathEngine(document)
        for query_index, query in enumerate(QUERIES):
            assert batch.value(doc_index, query_index) == fresh.evaluate(query), (
                document,
                query,
            )


def test_batch_stats_are_per_batch_deltas(documents):
    """BatchResult stats cover that batch only, not service lifetime."""
    service = QueryService()
    first = service.evaluate_many(["//b", "//b"], documents[:1])
    assert first.plan_stats["misses"] == 1
    assert first.plan_stats["hits"] == 1
    second = service.evaluate_many(["//b", "//b"], documents[:1])
    assert second.plan_stats["misses"] == 0     # already compiled
    assert second.plan_stats["hits"] == 2
    assert second.plan_stats["hit_rate"] == 1.0
    assert second.result_stats["misses"] == 0   # served from the memo
    assert second.result_stats["hits"] == 2
    # Lifetime totals still accumulate on the service.
    assert service.cache_stats()["plan_cache"]["misses"] == 1
    assert service.cache_stats()["plan_cache"]["hits"] == 3


def test_batch_algorithms_follow_fragment_dispatch(documents):
    service = QueryService()
    batch = service.evaluate_many(["//b[child::c]", "//b[position() = 1]"], documents[:1])
    assert batch.algorithms == ["corexpath", "optmincontext"]


def test_forced_algorithm_in_batch(documents):
    service = QueryService()
    batch = service.evaluate_many(QUERIES, documents[:1], algorithm="mincontext")
    assert set(batch.algorithms) == {"mincontext"}
    fresh = XPathEngine(documents[0])
    for query_index, query in enumerate(QUERIES):
        assert batch.value(0, query_index) == fresh.evaluate(query)


def test_cached_node_set_results_are_independent_copies(documents):
    service = QueryService()
    document = documents[0]
    first = service.evaluate("//b", document)
    first.clear()  # caller mutates its copy...
    second = service.evaluate("//b", document)
    assert second == XPathEngine(document).evaluate("//b")  # ...memo unharmed


def test_plan_options_key_distinct_plans():
    key_plain = plan_key("//b", PlanOptions.make())
    key_optimized = plan_key("//b", PlanOptions.make(optimize=True))
    key_vars = plan_key("//b", PlanOptions.make(variables={"x": 1.0}))
    assert len({key_plain, key_optimized, key_vars}) == 3


def test_bool_and_number_bindings_are_distinct_plans():
    """Regression: True == 1 in Python, but string($v) is 'true' vs '1' —
    the cache key must not conflate them."""
    document = parse_document("<a/>")
    service = QueryService(variables={"v": True})
    as_bool = service.evaluate("string($v)", document)
    as_number = service.evaluate(
        service.plan("string($v)", variables={"v": 1}), document
    )
    assert as_bool == "true"
    assert as_number == "1"
    assert PlanOptions.make(variables={"v": True}) != PlanOptions.make(
        variables={"v": 1}
    )


def test_variable_bindings_flow_through_service():
    document = parse_document('<a><b id="1">10</b><b id="2">20</b></a>')
    service = QueryService(variables={"limit": 15})
    got = service.evaluate("//b[. > $limit]", document)
    assert [n.xml_id for n in got] == ["2"]
    # a different binding is a different plan, not a stale cache hit
    other = service.plan("//b[. > $limit]", variables={"limit": 5})
    assert other is not service.plan("//b[. > $limit]")


# ----------------------------------------------------------------------
# Accounting: LRU eviction and counters are exact
# ----------------------------------------------------------------------


def test_lru_eviction_order_and_counters():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refreshes "a" to MRU
    cache.put("c", 3)                   # evicts "b", the LRU entry
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.get("b") is None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.evictions == 1
    assert len(cache) == 2


def test_plan_cache_counters_are_exact():
    document = running_example_document()
    service = QueryService(plan_capacity=8)
    for _ in range(3):
        for query in QUERIES:
            service.evaluate(query, document)
    plan_stats = service.plans.stats
    assert plan_stats.misses == len(QUERIES)
    assert plan_stats.hits == 2 * len(QUERIES)
    assert plan_stats.evictions == 0
    assert plan_stats.hit_rate == pytest.approx(2 / 3)
    result_stats = service.cache_stats()["result_cache"]
    assert result_stats["misses"] == len(QUERIES)
    assert result_stats["hits"] == 2 * len(QUERIES)


def test_plan_cache_eviction_under_capacity_pressure():
    document = running_example_document()
    service = QueryService(plan_capacity=2)
    queries = ["//a", "//b", "//c", "//d"]
    for query in queries:
        service.evaluate(query, document)
    assert service.plans.stats.misses == 4
    assert service.plans.stats.evictions == 2
    assert len(service.plans) == 2
    # Only the two most recent survive.
    survivors = {key[0] for key in service.plans.keys()}
    assert survivors == {"//c", "//d"}
    # Re-requesting an evicted query recompiles (a miss), not a stale hit.
    before = service.plans.stats.misses
    service.evaluate("//a", document)
    assert service.plans.stats.misses == before + 1


def test_session_capacity_bounds_document_retention():
    """A long-lived service must not retain every document ever served."""
    service = QueryService(session_capacity=2)
    documents = [parse_document(f"<a><b>{i}</b></a>") for i in range(5)]
    for document in documents:
        service.evaluate("//b", document)
    assert service.cache_stats()["sessions"] == 2
    # Evicted sessions' memo traffic still shows up in the aggregate.
    assert service.cache_stats()["result_cache"]["misses"] == 5


def test_result_memo_survives_plan_eviction_and_recompile():
    """Regression: the result memo is keyed by the plan's stable cache
    key, not the AST's per-compilation uid. A plan evicted from the LRU
    and recompiled must still hit its old memo entries — under the uid
    key every eviction made them permanently unreachable (silent full
    re-evaluations plus dead entries pinning node lists until the
    wholesale flush)."""
    document = parse_document('<a id="1"><b id="2">10</b><c id="3">20</c></a>')
    service = QueryService(plan_capacity=1)
    session = service.session(document)
    rounds = 3
    for _ in range(rounds):
        service.evaluate("//b", document)  # evicts //c's plan
        service.evaluate("//c", document)  # evicts //b's plan
    # The plan cache thrashes by construction...
    assert service.plans.stats.misses == 2 * rounds
    assert service.plans.stats.evictions == 2 * rounds - 1
    # ...but the result memo keeps hitting across recompilations.
    assert session.result_stats.misses == 2
    assert session.result_stats.hits == 2 * (rounds - 1)
    # No unreachable-entry growth: one memo entry per distinct request.
    assert len(session._results) == 2


def test_result_memo_flushes_at_capacity():
    document = parse_document("<a><b>1</b><c>2</c><d>3</d></a>")
    service = QueryService(result_capacity=2)
    session = service.session(document)
    for query in ("//b", "//c", "//d"):  # third insert flushes the memo
        service.evaluate(query, document)
    assert len(session._results) == 1
    assert session.result_stats.evictions == 2
    # Flushed entries recompute correctly (a miss, not an error).
    assert service.evaluate("//b", document) == XPathEngine(document).evaluate("//b")


def test_get_or_create_factory_runs_once():
    cache = PlanCache(capacity=4)
    calls = []
    for _ in range(3):
        value = cache.get_or_create("k", lambda: calls.append(1) or "v")
    assert value == "v"
    assert calls == [1]
    assert cache.stats.hits == 2 and cache.stats.misses == 1


def test_get_or_create_factory_with_recursive_inserts_keeps_counters_exact():
    """The unified insert path must stay exact when the factory itself
    populates the cache: 3 entries through a capacity-2 cache is exactly
    one eviction, and the outer value lands at the MRU end."""
    cache = PlanCache(capacity=2)

    def factory():
        cache.put("x", "inner-1")
        cache.put("y", "inner-2")
        return "outer"

    assert cache.get_or_create("k", factory) == "outer"
    assert len(cache) == 2
    assert cache.stats.evictions == 1          # "x" (LRU) and nothing else
    assert list(cache.keys()) == ["y", "k"]
    assert cache.get("k") == "outer"


def test_get_or_create_factory_inserting_the_same_key_is_not_an_eviction():
    """A factory that inserts the contested key itself: the outer insert
    overwrites in place — no spurious eviction, no duplicate entry."""
    cache = PlanCache(capacity=2)

    def factory():
        cache.put("k", "inner")
        return "outer"

    assert cache.get_or_create("k", factory) == "outer"
    assert len(cache) == 1
    assert cache.stats.evictions == 0
    assert cache.get("k") == "outer"


def test_put_refreshes_existing_key_to_mru():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)            # refresh must move "a" to the MRU end
    cache.put("c", 3)             # so this evicts "b", not "a"
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.stats.evictions == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_cache_events_mirror_into_stats_collectors():
    document = running_example_document()
    service = QueryService()
    with stats.collect() as collected:
        service.evaluate("//b", document)
        service.evaluate("//b", document)
    assert collected.get("plan_cache_misses") == 1
    assert collected.get("plan_cache_hits") == 1
    assert collected.get("result_cache_hits") == 1
    assert collected.get("plans_compiled") == 1


def test_clear_drops_entries_but_keeps_stats():
    document = running_example_document()
    service = QueryService()
    service.evaluate("//b", document)
    service.clear()
    assert len(service.plans) == 0
    assert service.plans.stats.misses == 1
    # After clearing, the same query compiles again.
    service.evaluate("//b", document)
    assert service.plans.stats.misses == 2
