"""Tests for the XML tree parser (structural well-formedness, node kinds)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xml.document import NodeKind
from repro.xml.parser import parse_document, parse_fragment


def test_root_element_and_document_node():
    doc = parse_document("<a/>")
    assert doc.root.is_document
    assert doc.root_element is not None
    assert doc.root_element.name == "a"
    assert doc.root_element.parent is doc.root


def test_nested_structure():
    doc = parse_document("<a><b><c/></b><d/></a>")
    a = doc.root_element
    assert [child.name for child in a.children] == ["b", "d"]
    b = a.children[0]
    assert [child.name for child in b.children] == ["c"]
    assert b.children[0].parent is b


def test_text_nodes():
    doc = parse_document("<a>hi <b>there</b> end</a>")
    a = doc.root_element
    kinds = [child.kind for child in a.children]
    assert kinds == [NodeKind.TEXT, NodeKind.ELEMENT, NodeKind.TEXT]
    assert a.children[0].value == "hi "
    assert a.children[2].value == " end"


def test_adjacent_text_and_cdata_merge_into_one_node():
    doc = parse_document("<a>one<![CDATA[ two ]]>three</a>")
    (text,) = doc.root_element.children
    assert text.kind is NodeKind.TEXT
    assert text.value == "one two three"


def test_attributes_become_attribute_nodes():
    doc = parse_document('<a x="1" y="2"/>')
    a = doc.root_element
    assert [(attr.name, attr.value) for attr in a.attributes] == [("x", "1"), ("y", "2")]
    assert all(attr.parent is a for attr in a.attributes)
    assert all(attr.is_attribute for attr in a.attributes)


def test_comment_and_pi_nodes():
    doc = parse_document("<a><!--note--><?pi data?></a>")
    comment, pi = doc.root_element.children
    assert comment.kind is NodeKind.COMMENT
    assert comment.value == "note"
    assert pi.kind is NodeKind.PROCESSING_INSTRUCTION
    assert pi.name == "pi"
    assert pi.value == "data"


def test_comments_outside_root_allowed():
    doc = parse_document("<!--before--><a/><!--after-->")
    kinds = [child.kind for child in doc.root.children]
    assert kinds == [NodeKind.COMMENT, NodeKind.ELEMENT, NodeKind.COMMENT]


def test_whitespace_stripping_mode():
    source = "<a>\n  <b/>\n  <c>kept</c>\n</a>"
    kept = parse_document(source)
    stripped = parse_document(source, keep_whitespace_text=False)
    assert any(child.is_text for child in kept.root_element.children)
    assert not any(child.is_text for child in stripped.root_element.children)
    # Non-whitespace text survives stripping.
    c = stripped.root_element.children[-1]
    assert c.children[0].value == "kept"


def test_mismatched_end_tag_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a><b></a></b>")


def test_unclosed_element_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a><b>")


def test_stray_end_tag_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a/></a>")


def test_two_root_elements_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a/><b/>")


def test_text_outside_root_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_document("<a/>junk")


def test_empty_document_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_document("   ")


def test_declaration_must_precede_root():
    with pytest.raises(XMLSyntaxError):
        parse_document('<a/><?xml version="1.0"?>')


def test_parse_fragment_wraps():
    doc = parse_fragment("<x/><y/>")
    assert doc.root_element.name == "fragment"
    assert [child.name for child in doc.root_element.children] == ["x", "y"]


def test_custom_id_attribute():
    doc = parse_document('<a key="k1"><b key="k2"/></a>', id_attribute="key")
    assert doc.element_by_id("k2").name == "b"


def test_document_is_finalized():
    doc = parse_document("<a/>")
    assert doc.is_finalized
    assert len(doc) == 2  # document node + element
