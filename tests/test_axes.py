"""Tests for axis semantics: per-node enumeration and set functions.

Fixture tree (ids in brackets):

    a[1]
    ├── b[2]
    │   ├── c[3]
    │   └── c[4]  @x
    ├── b[5]
    │   └── d[6]
    └── e[7]
"""

import pytest

from repro.axes.axes import ALL_AXES, axis_nodes, axis_set, inverse_axis_set
from repro.xml.parser import parse_document


@pytest.fixture(scope="module")
def doc():
    return parse_document(
        '<a id="1">'
        '<b id="2"><c id="3"/><c id="4" x="attr"/></b>'
        '<b id="5"><d id="6"/></b>'
        '<e id="7"/>'
        "</a>"
    )


def by_id(doc, key):
    return doc.element_by_id(key)


def ids(nodes):
    return sorted(n.xml_id for n in nodes)


def test_self(doc):
    node = by_id(doc, "3")
    assert list(axis_nodes(doc, "self", node)) == [node]


def test_child(doc):
    assert ids(axis_nodes(doc, "child", by_id(doc, "1"))) == ["2", "5", "7"]
    assert list(axis_nodes(doc, "child", by_id(doc, "3"))) == []


def test_parent(doc):
    assert list(axis_nodes(doc, "parent", by_id(doc, "3"))) == [by_id(doc, "2")]
    assert list(axis_nodes(doc, "parent", doc.root)) == []


def test_descendant_proximity_order(doc):
    names = [n.xml_id for n in axis_nodes(doc, "descendant", by_id(doc, "1"))]
    assert names == ["2", "3", "4", "5", "6", "7"]


def test_descendant_excludes_attributes(doc):
    nodes = list(axis_nodes(doc, "descendant", by_id(doc, "2")))
    assert ids(nodes) == ["3", "4"]
    assert not any(n.is_attribute for n in nodes)


def test_ancestor_proximity_order(doc):
    chain = list(axis_nodes(doc, "ancestor", by_id(doc, "3")))
    assert [n.xml_id for n in chain[:2]] == ["2", "1"]
    assert chain[-1].is_document


def test_or_self_variants(doc):
    node = by_id(doc, "2")
    descendants = list(axis_nodes(doc, "descendant-or-self", node))
    assert descendants[0] is node
    ancestors = list(axis_nodes(doc, "ancestor-or-self", node))
    assert ancestors[0] is node


def test_siblings(doc):
    b2 = by_id(doc, "2")
    assert ids(axis_nodes(doc, "following-sibling", b2)) == ["5", "7"]
    e = by_id(doc, "7")
    preceding = list(axis_nodes(doc, "preceding-sibling", e))
    # Proximity order: nearest sibling first.
    assert [n.xml_id for n in preceding] == ["5", "2"]


def test_attribute_has_no_siblings(doc):
    attr = by_id(doc, "4").attributes[0]
    assert list(axis_nodes(doc, "following-sibling", attr)) == []
    assert list(axis_nodes(doc, "preceding-sibling", attr)) == []


def test_following(doc):
    assert ids(axis_nodes(doc, "following", by_id(doc, "2"))) == ["5", "6", "7"]
    assert ids(axis_nodes(doc, "following", by_id(doc, "4"))) == ["5", "6", "7"]
    assert list(axis_nodes(doc, "following", by_id(doc, "7"))) == []


def test_preceding(doc):
    assert ids(axis_nodes(doc, "preceding", by_id(doc, "7"))) == ["2", "3", "4", "5", "6"]
    # Ancestors are not preceding.
    assert ids(axis_nodes(doc, "preceding", by_id(doc, "3"))) == []
    # Proximity order is reverse document order.
    got = [n.xml_id for n in axis_nodes(doc, "preceding", by_id(doc, "6"))]
    assert got == ["4", "3", "2"]


def test_attribute_axis(doc):
    assert [a.name for a in axis_nodes(doc, "attribute", by_id(doc, "4"))] == ["id", "x"]
    assert [a.name for a in axis_nodes(doc, "attribute", by_id(doc, "3"))] == ["id"]
    assert list(axis_nodes(doc, "attribute", doc.root)) == []


def test_axis_set_matches_per_node_union(doc):
    X = {by_id(doc, "2"), by_id(doc, "5")}
    for axis in sorted(ALL_AXES - {"id"}):
        expected = set()
        for x in X:
            expected.update(axis_nodes(doc, axis, x))
        assert axis_set(doc, axis, X) == expected, axis


def test_axis_set_empty_input(doc):
    for axis in sorted(ALL_AXES - {"id"}):
        assert axis_set(doc, axis, set()) == set(), axis


def test_inverse_axis_definition(doc):
    """χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅} — checked literally for every axis."""
    Y = {by_id(doc, "3"), by_id(doc, "6")}
    for axis in sorted(ALL_AXES - {"id"}):
        expected = {
            x for x in doc.nodes if not set(axis_nodes(doc, axis, x)).isdisjoint(Y)
        }
        assert inverse_axis_set(doc, axis, Y) == expected, axis


def test_unknown_axis_rejected(doc):
    with pytest.raises(ValueError):
        list(axis_nodes(doc, "sideways", doc.root))
    with pytest.raises(ValueError):
        axis_set(doc, "sideways", set())
