"""Tests for sharded batch execution: shard planning, both backends,
batch-order merging, and exact cross-worker statistics aggregation.

The contract under test: a sharded run is *indistinguishable* from the
sequential `evaluate_many` path in its values (same objects for the
thread backend, same parent-document nodes for the process backend), and
its merged cache statistics are the exact sums of the per-shard counters.
"""

import pytest

from repro.service import (
    EXECUTOR_BACKENDS,
    SHARD_STRATEGIES,
    QueryService,
    ShardedExecutor,
    merge_stats_snapshots,
    plan_shards,
)
from repro.service.shard import document_weight
from repro.workloads.documents import (
    book_catalog,
    numbered_line,
    running_example_document,
    wide_tree,
)
from repro.xml.parser import parse_document

QUERIES = [
    "//b",
    "count(//*)",
    "/descendant::*[position() = last()]",
    "//b",  # duplicate: exercises plan + result cache hits inside shards
    "//c[. > 15]",
]


@pytest.fixture(scope="module")
def documents():
    return [
        running_example_document(),
        book_catalog(books=4),
        wide_tree(width=12),
        parse_document('<a id="1"><b id="2">10</b><c id="3">20</c></a>'),
        numbered_line(9),
        parse_document("<a><b>99</b></a>"),
    ]


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------


def test_round_robin_sharding_interleaves_documents(documents):
    shards = plan_shards(documents, workers=3, strategy="round-robin")
    assert [s.document_indices for s in shards] == [(0, 3), (1, 4), (2, 5)]
    assert [s.weight for s in shards] == [2, 2, 2]  # document counts


def test_size_balanced_sharding_balances_node_counts():
    heavy = book_catalog(books=20)
    light = [parse_document(f"<a><b>{i}</b></a>") for i in range(4)]
    shards = plan_shards([heavy] + light, workers=2, strategy="size-balanced")
    assert len(shards) == 2
    # The heavy catalog dwarfs the four 5-node documents; LPT must put it
    # alone and group the light ones, not split round-robin-style.
    by_weight = sorted(shards, key=lambda s: s.weight)
    assert by_weight[0].document_indices == (1, 2, 3, 4)
    assert by_weight[1].document_indices == (0,)
    assert by_weight[1].weight == document_weight(heavy)
    assert by_weight[0].weight == sum(document_weight(d) for d in light)


def test_sharding_never_produces_empty_shards(documents):
    for strategy in SHARD_STRATEGIES:
        shards = plan_shards(documents[:2], workers=8, strategy=strategy)
        assert len(shards) == 2
        assert all(s.document_indices for s in shards)
    assert plan_shards([], workers=4) == []


def test_sharding_covers_every_document_exactly_once(documents):
    for strategy in SHARD_STRATEGIES:
        for workers in (1, 2, 4, 7):
            shards = plan_shards(documents, workers, strategy=strategy)
            covered = sorted(
                index for shard in shards for index in shard.document_indices
            )
            assert covered == list(range(len(documents))), (strategy, workers)


def test_shard_planning_validates_arguments(documents):
    with pytest.raises(ValueError):
        plan_shards(documents, workers=0)
    with pytest.raises(ValueError):
        plan_shards(documents, workers=2, strategy="by-vibes")
    with pytest.raises(ValueError):
        ShardedExecutor(workers=0)
    with pytest.raises(ValueError):
        ShardedExecutor(backend="fiber")
    with pytest.raises(ValueError):
        ShardedExecutor(shard_by="by-vibes")


# ----------------------------------------------------------------------
# Execution: both backends match the sequential path
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
@pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
def test_sharded_values_match_sequential(documents, backend, strategy):
    sequential = QueryService().evaluate_many(QUERIES, documents)
    executor = ShardedExecutor(workers=3, backend=backend, shard_by=strategy)
    sharded = executor.execute(QUERIES, documents)
    assert sharded.values == sequential.values
    assert sharded.algorithms == sequential.algorithms
    assert sharded.document_count == len(documents)
    assert sharded.workers == 3


def test_process_backend_rebinds_nodes_to_parent_documents(documents):
    """Process workers evaluate rebuilt trees, but the merged result must
    hand back nodes of the *caller's* documents (by identity)."""
    executor = ShardedExecutor(workers=2, backend="process")
    batch = executor.execute(["//b"], documents)
    for doc_index, document in enumerate(documents):
        for node in batch.value(doc_index, 0):
            assert node is document.nodes[node.pre]


def test_process_backend_ships_noncanonical_documents_without_fallback():
    """A builder document with *adjacent text nodes* does not round-trip
    node-isomorphically through serialize → parse — under the old markup
    shipping this forced an in-parent fallback. Binary snapshots preserve
    the pre-order numbering exactly for every finalized document, so the
    shard ships, evaluates in the worker, and rebinds correctly — no
    fallback anywhere."""
    from repro.xml.builder import element, text

    noncanonical = element("a", None, text("x"), text("y"), element("b")).build()
    canonical = parse_document("<a><b>1</b></a>")
    documents = [noncanonical, canonical, parse_document("<a><b>2</b></a>")]
    sequential = QueryService().evaluate_many(["//b", "//text()"], documents)
    batch = ShardedExecutor(workers=2, backend="process").execute(
        ["//b", "//text()"], documents
    )
    assert batch.values == sequential.values
    # The selected element is the parent's own <b> node, not a shifted one.
    (b_node,) = batch.value(0, 0)
    assert b_node is noncanonical.nodes[b_node.pre]
    assert b_node.is_element and b_node.name == "b"
    # Both of the adjacent text nodes come back, unmerged.
    assert [n.value for n in batch.value(0, 1)] == ["x", "y"]
    # No shard fell back: snapshots make every document shippable.
    for shard in batch.shards:
        assert not shard["local_fallback"]


@pytest.mark.parametrize(
    "make_document",
    [
        # PI data containing '?>' serializes to a PI that terminates
        # early: the reparse *adds* nodes, shifting later pre indices.
        lambda element, text, comment, pi: element(
            "a", None, pi("t", "x?>y"), element("b", None, text("10"))
        ).build(),
        # A comment containing '--' serializes to non-well-formed markup:
        # the worker's reparse raises outright.
        lambda element, text, comment, pi: element(
            "a", None, comment("x--y"), element("b", None, text("10"))
        ).build(),
    ],
)
def test_process_backend_survives_unserializable_builder_documents(make_document):
    """Builder documents whose serialize → parse round trip is not
    node-isomorphic (or not even well-formed) used to force in-parent
    fallbacks; snapshot shipping side-steps serialization entirely, so
    they evaluate in workers and rebind to the caller's exact nodes."""
    from repro.xml.builder import comment, element, processing_instruction, text

    tricky = make_document(element, text, comment, processing_instruction)
    plain = parse_document("<a><b>1</b></a>")
    documents = [tricky, plain]
    sequential = QueryService().evaluate_many(["//b"], documents)
    batch = ShardedExecutor(workers=2, backend="process").execute(["//b"], documents)
    assert batch.values == sequential.values
    (b_node,) = batch.value(0, 0)
    assert b_node.is_element and b_node.name == "b"
    assert b_node is tricky.nodes[b_node.pre]
    for shard in batch.shards:
        assert not shard["local_fallback"]


def test_evaluate_many_workers_wiring(documents):
    """QueryService.evaluate_many(workers=N) delegates to the executor
    and leaves the parent service's own caches untouched."""
    service = QueryService(plan_capacity=32)
    sequential = QueryService().evaluate_many(QUERIES, documents)
    sharded = service.evaluate_many(
        QUERIES, documents, workers=2, shard_by="size-balanced"
    )
    assert sharded.values == sequential.values
    assert sharded.workers == 2
    assert len(service.plans) == 0  # parent caches not populated


def test_more_workers_than_documents(documents):
    executor = ShardedExecutor(workers=16, backend="thread")
    batch = executor.execute(["//b"], documents[:2])
    assert batch.workers == 2  # never more shards than documents
    assert batch.values == QueryService().evaluate_many(["//b"], documents[:2]).values


def test_sharded_empty_document_list():
    batch = ShardedExecutor(workers=4).execute(QUERIES, [])
    assert batch.document_count == 0
    assert batch.values == []
    assert batch.algorithms  # queries still compiled and resolved
    assert batch.plan_stats["hits"] == 0 and batch.plan_stats["misses"] == 0


def test_sharded_single_worker_degenerates_to_one_shard(documents):
    batch = ShardedExecutor(workers=1).execute(QUERIES, documents)
    assert batch.workers == 1
    assert len(batch.shards) == 1
    assert batch.values == QueryService().evaluate_many(QUERIES, documents).values


def test_sharded_run_surfaces_query_errors_before_workers(documents):
    from repro.errors import FragmentViolationError, XPathSyntaxError

    executor = ShardedExecutor(workers=2)
    with pytest.raises(XPathSyntaxError):
        executor.execute(["//b["], documents)
    with pytest.raises(FragmentViolationError):
        executor.execute(["//b[position() = 1]"], documents, algorithm="corexpath")


def test_process_backend_rejects_node_set_variable_bindings(documents):
    """Regression: a node-set binding shipped to a process worker would
    pickle a *copy* of its tree, and the worker's pre-index results would
    silently decode against the wrong (queried) document. The constraint
    is enforced up front; thread workers share the parent's objects and
    keep working."""
    bound_node = documents[0].root_element
    with pytest.raises(ValueError, match="scalar"):
        ShardedExecutor(workers=2, backend="process", variables={"v": [bound_node]})
    service = QueryService(variables={"v": [bound_node]})
    with pytest.raises(ValueError, match="scalar"):
        service.evaluate_many(["$v"], documents, workers=2, backend="process")
    threaded = service.evaluate_many(["$v"], documents, workers=2, backend="thread")
    for doc_index in range(len(documents)):
        assert threaded.value(doc_index, 0) == [bound_node]  # the parent's node


def test_sharded_optimize_and_variables_flow_to_workers(documents):
    document = parse_document('<a><b id="1">10</b><b id="2">20</b></a>')
    service = QueryService(variables={"limit": 15}, optimize=True)
    batch = service.evaluate_many(["//b[. > $limit]"], [document], workers=2)
    assert [n.xml_id for n in batch.value(0, 0)] == ["2"]


def test_process_worker_verifies_rebuilt_node_counts():
    """The worker-side defense in depth: a payload whose decoded
    documents don't match the parent's node counts (or whose blobs don't
    decode at all) is answered with a fallback request, never an
    index-encoded result."""
    from repro.service.executor import _evaluate_shard_snapshots
    from repro.xml.snapshot import encode_snapshot

    config = QueryService().config()
    document = parse_document("<a><b>1</b></a>")
    blob = encode_snapshot(document)
    mismatched = _evaluate_shard_snapshots(
        {
            "config": config,
            "queries": ["//b"],
            "algorithm": "auto",
            "snapshots": [blob],
            "node_counts": [99],  # parent numbering disagrees
        }
    )
    assert "fallback" in mismatched and "values" not in mismatched
    corrupted = bytearray(blob)
    corrupted[len(corrupted) // 2] ^= 0x20
    undecodable = _evaluate_shard_snapshots(
        {
            "config": config,
            "queries": ["//b"],
            "algorithm": "auto",
            "snapshots": [bytes(corrupted)],
            "node_counts": [len(document)],
        }
    )
    assert "fallback" in undecodable and "decode" in undecodable["fallback"]
    # And a well-formed payload answers with index-encoded values.
    good = _evaluate_shard_snapshots(
        {
            "config": config,
            "queries": ["//b"],
            "algorithm": "auto",
            "snapshots": [blob],
            "node_counts": [len(document)],
        }
    )
    assert "fallback" not in good and good["values"]


# ----------------------------------------------------------------------
# Statistics merge: exact sums across workers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
def test_merged_stats_equal_sum_of_per_shard_counters(documents, backend):
    executor = ShardedExecutor(workers=3, backend=backend, plan_capacity=4)
    batch = executor.execute(QUERIES, documents)
    assert len(batch.shards) == 3
    for stats_name in ("plan_stats", "result_stats"):
        merged = getattr(batch, stats_name)
        for counter in ("hits", "misses", "evictions"):
            assert merged[counter] == sum(
                shard[stats_name][counter] for shard in batch.shards
            ), (backend, stats_name, counter)
    # The duplicated query means every shard saw real cache traffic.
    assert batch.plan_stats["hits"] >= len(batch.shards)
    lookups = batch.plan_stats["hits"] + batch.plan_stats["misses"]
    assert batch.plan_stats["hit_rate"] == batch.plan_stats["hits"] / lookups


def test_merge_stats_snapshots_recomputes_hit_rate():
    merged = merge_stats_snapshots(
        [
            {"hits": 3, "misses": 1, "evictions": 0, "hit_rate": 0.75},
            {"hits": 0, "misses": 4, "evictions": 2, "hit_rate": 0.0},
        ],
        name="plan_cache",
        capacity=8,
    )
    assert merged["hits"] == 3 and merged["misses"] == 5 and merged["evictions"] == 2
    assert merged["hit_rate"] == pytest.approx(3 / 8)
    assert merged["name"] == "plan_cache" and merged["capacity"] == 8
    empty = merge_stats_snapshots([], name="result_cache")
    assert empty["hit_rate"] == 0.0


def test_shard_metadata_reports_documents_and_weights(documents):
    executor = ShardedExecutor(workers=2, shard_by="size-balanced")
    batch = executor.execute(["//b"], documents)
    covered = sorted(i for shard in batch.shards for i in shard["documents"])
    assert covered == list(range(len(documents)))
    for shard in batch.shards:
        assert shard["strategy"] == "size-balanced"
        assert shard["backend"] == "thread"
        assert shard["weight"] == sum(
            document_weight(documents[i]) for i in shard["documents"]
        )
