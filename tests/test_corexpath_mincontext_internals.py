"""White-box tests for the Core XPath evaluator and MINCONTEXT internals."""

import pytest

from repro.core.context import WILDCARD, Context
from repro.core.corexpath import CoreXPathEvaluator
from repro.core.mincontext import MinContextEvaluator
from repro.engine import XPathEngine
from repro.errors import EvaluationError, FragmentViolationError
from repro.xml.parser import parse_document
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance


def analyzed(query):
    expr = normalize(parse_xpath(query))
    compute_relevance(expr)
    return expr


@pytest.fixture()
def doc():
    return parse_document(
        '<r id="r"><a id="a1"><b id="b1"/><c id="c1"/></a>'
        '<a id="a2"><b id="b2"><c id="c2"/></b></a></r>'
    )


def ids(nodes):
    return sorted(n.xml_id for n in nodes)


# --- Core XPath evaluator ------------------------------------------------------

def test_core_forward_path(doc):
    evaluator = CoreXPathEvaluator(doc)
    got = evaluator.evaluate(analyzed("/r/a/b"), Context(doc.root))
    assert ids(got) == ["b1", "b2"]


def test_core_predicates_as_sets(doc):
    evaluator = CoreXPathEvaluator(doc)
    got = evaluator.evaluate(analyzed("//a[b[c]]"), Context(doc.root))
    assert ids(got) == ["a2"]
    got = evaluator.evaluate(analyzed("//a[not(b[c])]"), Context(doc.root))
    assert ids(got) == ["a1"]
    got = evaluator.evaluate(analyzed("//a[b and c]"), Context(doc.root))
    assert ids(got) == ["a1"]
    got = evaluator.evaluate(analyzed("//a[c or b[c]]"), Context(doc.root))
    assert ids(got) == ["a1", "a2"]


def test_core_absolute_path_predicate(doc):
    evaluator = CoreXPathEvaluator(doc)
    got = evaluator.evaluate(analyzed("//b[/r/a]"), Context(doc.root))
    assert ids(got) == ["b1", "b2"]
    got = evaluator.evaluate(analyzed("//b[/r/missing]"), Context(doc.root))
    assert got == []


def test_core_rejects_non_core(doc):
    evaluator = CoreXPathEvaluator(doc)
    with pytest.raises(FragmentViolationError):
        evaluator.evaluate(analyzed("//a[1]"), Context(doc.root))


def test_core_relative_from_context(doc):
    evaluator = CoreXPathEvaluator(doc)
    a2 = doc.element_by_id("a2")
    got = evaluator.evaluate(analyzed("b/c"), Context(a2))
    assert ids(got) == ["c2"]


def test_core_matches_general_algorithms_on_reverse_axes(doc):
    engine = XPathEngine(doc)
    for query in ("//c/ancestor::a", "//b[preceding-sibling::*]", "//*[following::c]"):
        assert engine.evaluate(query, algorithm="corexpath") == engine.evaluate(
            query, algorithm="mincontext"
        ), query


# --- MINCONTEXT internals ------------------------------------------------------

def test_tables_project_to_relevant_context(doc):
    ast = analyzed("//a[b = 'x' or position() = 1]")
    mc = MinContextEvaluator(doc)
    mc.evaluate(ast, Context(doc.root))
    predicate = ast.steps[1].predicates[0]
    left = predicate.left  # b = 'x' — cn only
    assert left.uid in mc.tables
    for key in mc.tables[left.uid]:
        assert len(key) == 1  # projected to (cn,)
    # The or-node depends on cp: no table.
    assert predicate.uid not in mc.tables


def test_wildcard_context_for_context_free_subexpressions(doc):
    ast = analyzed("count(//b) + 1")
    mc = MinContextEvaluator(doc)
    value = mc.evaluate(ast, Context(doc.root))
    assert value == 3.0
    # count(//b) is keyed by cn per the paper's Path rule; the literal by ().
    literal = ast.right
    assert mc.tables[literal.uid] == {(): 1.0}


def test_eval_single_context_requires_prepared_tables(doc):
    ast = analyzed("//a[b = 'x']")
    mc = MinContextEvaluator(doc)
    predicate = ast.steps[1].predicates[0]
    with pytest.raises(EvaluationError):
        mc.eval_single_context(predicate, (doc.root, WILDCARD, WILDCARD))


def test_eval_single_context_wildcard_position_guard(doc):
    ast = analyzed("position()")
    mc = MinContextEvaluator(doc)
    with pytest.raises(EvaluationError):
        mc.eval_single_context(ast, (doc.root, WILDCARD, WILDCARD))


def test_union_inner_table(doc):
    ast = analyzed("count(b | c)")
    mc = MinContextEvaluator(doc)
    a1 = doc.element_by_id("a1")
    value = mc.evaluate(ast, Context(a1))
    assert value == 2.0


def test_filter_primary_with_position_dependence(doc):
    """A path rooted at a cp-dependent primary (extension corner)."""
    engine = XPathEngine(doc)
    # id(string(position())) depends on cp — evaluated per single context.
    doc2 = parse_document('<r><k id="1"><m id="x"/></k><k id="2"/></r>')
    engine2 = XPathEngine(doc2)
    got = engine2.evaluate(
        "id(string(position()))/m", context_node=doc2.root, context_position=1,
        context_size=2, algorithm="mincontext",
    )
    assert [n.xml_id for n in got] == ["x"]
    got = engine2.evaluate(
        "id(string(position()))/m", context_node=doc2.root, context_position=2,
        context_size=2, algorithm="mincontext",
    )
    assert got == []


def test_mincontext_never_tables_position_dependent_nodes(doc):
    ast = analyzed("//a/b[position() = last()]")
    mc = MinContextEvaluator(doc)
    mc.evaluate(ast, Context(doc.root))
    predicate = ast.steps[2].predicates[0]
    assert predicate.uid not in mc.tables
    assert predicate.left.uid not in mc.tables
    assert predicate.right.uid not in mc.tables


def test_outermost_vs_inner_path_results_match(doc):
    """eval_outermost_locpath (sets) and eval_inner_locpath (relations)
    must agree on the reachable nodes."""
    ast = analyzed("//a/b")
    mc = MinContextEvaluator(doc)
    outer = mc.eval_outermost_locpath(ast, {doc.root}, Context(doc.root))
    mc2 = MinContextEvaluator(doc)
    inner = mc2.eval_inner_locpath(ast, {doc.root})
    assert outer == inner[doc.root]
