"""Tests for the fragment classifiers (Definition 12, Restrictions 1-3)
and the bottom-up path discovery of Algorithm 8."""

import pytest

from repro.xpath.fragments import (
    core_xpath_violation,
    find_bottomup_paths,
    is_bottomup_eligible,
    is_core_xpath,
    is_extended_wadler,
    wadler_violation,
)
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.xpath.unparse import unparse


def analyzed(source):
    expr = normalize(parse_xpath(source))
    compute_relevance(expr)
    return expr


# --- Core XPath (Definition 12) ------------------------------------------------


@pytest.mark.parametrize(
    "query",
    [
        "child::a",
        "/child::a/descendant::b",
        "//a/b",
        "a[b]",
        "a[b and not(c)]",
        "a[b or c/d]",
        "a[not(b[c])]",
        "a[/b/c]",
        "ancestor::*[following-sibling::a]",
        "a[.]",  # self::node() is a path predicate
    ],
)
def test_core_members(query):
    assert is_core_xpath(analyzed(query)), core_xpath_violation(analyzed(query))


@pytest.mark.parametrize(
    "query,reason_part",
    [
        ("a[position() = 1]", "non-Core"),
        ("a[1]", "non-Core"),  # numeric predicate becomes position() = 1
        ("a[b = 1]", "non-Core"),
        ("count(a)", "not a location path"),
        ("a[count(b)]", "non-Core"),
        ("a | b", "not a location path"),
        ("id(a)", "id pseudo-axis"),
        ("(a)[1]", "filter-expression"),
        ("a['s']", "not a location path"),
    ],
)
def test_core_non_members(query, reason_part):
    violation = core_xpath_violation(analyzed(query))
    assert violation is not None
    assert reason_part in violation


# --- Extended Wadler Fragment (Restrictions 1-3) -----------------------------------


@pytest.mark.parametrize(
    "query",
    [
        # The paper's own showcase: Example 9's query Q.
        "/child::a/descendant::*[boolean(following::d["
        "(position() != last()) and (preceding-sibling::*/preceding::* = 100)"
        "]/following::d)]",
        # Wadler's original ingredients: paths + position/last arithmetic.
        "a[position() > last()*0.5]",
        "a[position() != last() and b = 100]",
        "a[b = 'x']",
        "a[2 < position()]",
        "id('k1 k2')/child::a",
        "a[id('k') = 3]",
        "a | b",
        "a[boolean(b | c)]",  # unions lifted into or
        "a[string-length('abc') = position()]",  # data-free string measure
        "/descendant::*[self::* >= 2]",
    ],
)
def test_wadler_members(query):
    expr = analyzed(query)
    assert is_extended_wadler(expr), wadler_violation(expr)


@pytest.mark.parametrize(
    "query,restriction",
    [
        ("a[name() = 'b']", "Restriction 1"),
        ("a[local-name(b) = 'b']", "Restriction 1"),
        ("a[string(b) = 'x']", "Restriction 1"),
        ("a[number(b) = 1]", "Restriction 1"),
        ("a[b = c]", "Restriction 2"),
        ("a[count(b) = 1]", "Restriction 2"),
        ("sum(a)", "Restriction 2"),
        ("a[b = position()]", "Restriction 2"),  # scalar depends on context
        ("a[b = count(c)]", "Restriction 2"),
        ("id(string(b))", "Restriction 1"),  # string(nset) inside id
        ("id(concat('k', string(position())))", "Restriction 3"),
    ],
)
def test_wadler_non_members(query, restriction):
    violation = wadler_violation(analyzed(query))
    assert violation is not None, query
    assert restriction in violation or "Restriction" in violation


def test_wadler_strict_mode_bans_string_measures():
    expr = analyzed("a[string-length('abc') = position()]")
    assert is_extended_wadler(expr)
    assert not is_extended_wadler(expr, strict=True)


def test_wadler_nset_in_bad_position():
    violation = wadler_violation(analyzed("a[translate(b, 'a', 'b') = 'x']"))
    # translate's argument is string(b): data selection.
    assert violation is not None


def test_core_is_contained_in_wadler():
    """Theorem 13's proof sketch: Core XPath ⊆ the linear-space fragment."""
    for query in ("a[b and not(c)]", "//a/b[c]", "/child::a[descendant::d]"):
        expr = analyzed(query)
        assert is_core_xpath(expr)
        assert is_extended_wadler(expr)


# --- bottom-up path discovery (Algorithm 8) ------------------------------------------


def test_find_bottomup_paths_in_example9():
    expr = analyzed(
        "/child::a/descendant::*[boolean(following::d["
        "(position() != last()) and (preceding-sibling::*/preceding::* = 100)"
        "]/following::d)]"
    )
    found = find_bottomup_paths(expr)
    assert len(found) == 2
    # Innermost first: ρ = 100 before boolean(π).
    assert unparse(found[0]).startswith("preceding-sibling::*")
    assert unparse(found[1]).startswith("boolean(")


def test_simple_predicate_is_bottomup():
    expr = analyzed("a[b]")  # predicate normalizes to boolean(b)
    found = find_bottomup_paths(expr)
    assert len(found) == 1
    assert is_bottomup_eligible(found[0])


def test_comparison_with_context_free_scalar_is_eligible():
    expr = analyzed("a[b = 1]")
    assert len(find_bottomup_paths(expr)) == 1
    expr = analyzed("a[1 = b]")  # path on the right
    assert len(find_bottomup_paths(expr)) == 1


def test_comparison_with_context_dependent_scalar_is_not_eligible():
    expr = analyzed("a[b = position()]")
    assert find_bottomup_paths(expr) == []


def test_nset_vs_nset_not_eligible():
    expr = analyzed("a[b = c]")
    assert find_bottomup_paths(expr) == []


def test_root_expression_itself_not_collected():
    # The outermost path is evaluated forward, not bottom-up.
    expr = analyzed("boolean(a)")
    assert find_bottomup_paths(expr) == []


def test_nested_bottomup_order_is_innermost_first():
    expr = analyzed("a[b[c = 1] = 2]")
    found = find_bottomup_paths(expr)
    assert len(found) == 2
    assert "c = 1" in unparse(found[0]) or unparse(found[0]).startswith("child::c")
    assert "= 2" in unparse(found[1])
