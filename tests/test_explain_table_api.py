"""Tests for the explain (plan) module and the engine's table() API."""

import pytest

from repro.engine import XPathEngine
from repro.errors import ReproError
from repro.xml.parser import parse_document
from repro.xpath.explain import explain, explain_text
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.workloads.queries import example9_query


def analyzed(query):
    expr = normalize(parse_xpath(query))
    compute_relevance(expr)
    return expr


@pytest.fixture()
def doc():
    return parse_document(
        '<r id="r"><a id="a1"><b id="b1">10</b></a><a id="a2"><b id="b2">20</b></a></r>'
    )


# --- explain -------------------------------------------------------------------

def test_explain_outermost_path():
    lines = explain(analyzed("/a/b"))
    assert lines[0].strategy == "outermost-set"


def test_explain_bottomup_subexpressions():
    lines = explain(analyzed("//a[b = 1]"))
    strategies = {line.source: line.strategy for line in lines}
    assert any(s == "bottom-up" for s in strategies.values())


def test_explain_cpcs_loop():
    lines = explain(analyzed("//a[position() = last()]"))
    loop_lines = [l for l in lines if l.strategy == "cp/cs-loop"]
    assert loop_lines, explain_text(analyzed("//a[position() = last()]"))


def test_explain_inner_relation_for_count_argument():
    lines = explain(analyzed("//a[count(b) > 0]"))
    assert any(l.strategy == "inner-relation" for l in lines)


def test_explain_constant():
    lines = explain(analyzed("//a[b = 1]"))
    assert any(l.strategy == "constant" for l in lines)


def test_explain_example9_marks_both_paths_bottomup():
    lines = explain(analyzed(example9_query()))
    bottomup = [l for l in lines if l.strategy == "bottom-up"]
    assert len(bottomup) == 2
    # Nested paths inside a bottom-up path are backward-propagated steps,
    # not dom × 2^dom relations.
    assert not any(l.strategy == "inner-relation" for l in lines)


def test_explain_text_is_indented_plan():
    text = explain_text(analyzed("//a[b]"))
    assert "outermost-set" in text
    assert "\n    " in text  # children indented


# --- engine.table() -----------------------------------------------------------------

def test_table_scalar_query(doc):
    engine = XPathEngine(doc)
    table = engine.table("count(b)")
    a1 = doc.element_by_id("a1")
    r = doc.element_by_id("r")
    assert table[a1] == 1.0
    assert table[r] == 0.0
    assert len(table) == len(doc.nodes)


def test_table_nset_query(doc):
    engine = XPathEngine(doc)
    table = engine.table("child::b")
    a2 = doc.element_by_id("a2")
    assert [n.xml_id for n in table[a2]] == ["b2"]
    assert table[doc.element_by_id("b1")] == []


def test_table_boolean_query_matches_pointwise(doc):
    engine = XPathEngine(doc)
    table = engine.table("boolean(b[. > 15])")
    for node in doc.nodes:
        expected = engine.evaluate("boolean(b[. > 15])", context_node=node)
        assert table[node] == expected, node.path()


def test_table_restricted_nodes(doc):
    engine = XPathEngine(doc)
    targets = [doc.element_by_id("a1"), doc.element_by_id("a2")]
    table = engine.table("count(b)", nodes=targets)
    assert set(table) == set(targets)


def test_table_rejects_position_dependent_queries(doc):
    engine = XPathEngine(doc)
    with pytest.raises(ReproError):
        engine.table("position() + 1")
    with pytest.raises(ReproError):
        engine.table("last()")


def test_table_with_and_without_bottomup_agree(doc):
    engine = XPathEngine(doc)
    query = "boolean(b = 20)"
    with_pass = engine.table(query, use_bottomup=True)
    without = engine.table(query, use_bottomup=False)
    assert with_pass == without


def test_table_matches_per_node_evaluation_on_paths(doc):
    engine = XPathEngine(doc)
    query = "following-sibling::*"
    table = engine.table(query)
    for node in doc.nodes:
        assert table[node] == engine.evaluate(query, context_node=node), node.path()
