"""Tests for the id pseudo-axis and the document-order utilities."""

import pytest

from repro.axes.axes import axis_nodes, axis_set, inverse_axis_set
from repro.axes.order import (
    axis_order_key,
    index_in_axis_order,
    is_forward_axis,
    sort_in_axis_order,
)
from repro.xml.parser import parse_document


@pytest.fixture(scope="module")
def doc():
    # b/c hold whitespace-separated id references in their text.
    return parse_document(
        '<a id="r">'
        '<b id="1">2 3</b>'
        '<b id="2">r</b>'
        '<c id="3">2 missing</c>'
        '<c id="4"></c>'
        "</a>"
    )


def by_id(doc, key):
    return doc.element_by_id(key)


def test_id_axis_single_node(doc):
    got = list(axis_nodes(doc, "id", by_id(doc, "1")))
    assert [n.xml_id for n in got] == ["2", "3"]


def test_id_axis_empty_for_no_tokens(doc):
    assert list(axis_nodes(doc, "id", by_id(doc, "4"))) == []


def test_id_axis_set(doc):
    X = {by_id(doc, "1"), by_id(doc, "2")}
    assert {n.xml_id for n in axis_set(doc, "id", X)} == {"2", "3", "r"}


def test_id_inverse(doc):
    """id⁻¹(Y): nodes whose string value mentions an id of Y."""
    Y = {by_id(doc, "2")}
    got = inverse_axis_set(doc, "id", Y)
    # '2' appears in strval of b[1], c[3] — and also of the root/document
    # (their string values concatenate all text) — all qualify.
    assert by_id(doc, "1") in got
    assert by_id(doc, "3") in got
    assert by_id(doc, "4") not in got


def test_id_inverse_of_unidentified_nodes_is_empty(doc):
    text_node = by_id(doc, "1").children[0]
    assert inverse_axis_set(doc, "id", {text_node}) == set()


def test_id_inverse_matches_definition(doc):
    Y = {by_id(doc, "3"), by_id(doc, "r")}
    expected = {x for x in doc.nodes if not set(axis_nodes(doc, "id", x)).isdisjoint(Y)}
    assert inverse_axis_set(doc, "id", Y) == expected


def test_forward_reverse_classification():
    assert is_forward_axis("child")
    assert is_forward_axis("following")
    assert is_forward_axis("id")
    assert not is_forward_axis("ancestor")
    assert not is_forward_axis("preceding-sibling")
    with pytest.raises(ValueError):
        is_forward_axis("nope")


def test_sort_in_axis_order(doc):
    nodes = [by_id(doc, k) for k in ("3", "1", "2")]
    forward = sort_in_axis_order(nodes, "child")
    assert [n.xml_id for n in forward] == ["1", "2", "3"]
    backward = sort_in_axis_order(nodes, "preceding")
    assert [n.xml_id for n in backward] == ["3", "2", "1"]


def test_index_in_axis_order(doc):
    nodes = [by_id(doc, k) for k in ("1", "2", "3")]
    assert index_in_axis_order(by_id(doc, "2"), nodes, "child") == 2
    assert index_in_axis_order(by_id(doc, "2"), nodes, "ancestor") == 2
    assert index_in_axis_order(by_id(doc, "1"), nodes, "preceding") == 3
    with pytest.raises(ValueError):
        index_in_axis_order(by_id(doc, "r"), nodes, "child")


def test_axis_order_key_values(doc):
    key = axis_order_key("child")
    assert key(by_id(doc, "1")) < key(by_id(doc, "2"))
    reverse_key = axis_order_key("preceding")
    assert reverse_key(by_id(doc, "1")) > reverse_key(by_id(doc, "2"))
