"""The async front end: awaitable evaluation, streaming, exact stats.

No pytest-asyncio in the toolchain — every test drives its coroutine
with ``asyncio.run`` explicitly, which also mirrors how the CLI's
``--stream`` path runs (a private event loop per invocation).
"""

import asyncio
import threading
import time

import pytest

from repro.engine import XPathEngine
from repro.errors import XPathSyntaxError
from repro.service import AsyncQueryService, BatchStream, QueryService, StreamItem
from repro.workloads.documents import (
    balanced_tree,
    book_catalog,
    running_example_document,
    wide_tree,
)
from repro.xml.parser import parse_document

QUERIES = ["//b", "count(//*)", "/descendant::*[position() = last()]"]


@pytest.fixture(scope="module")
def documents():
    return [
        running_example_document(),
        book_catalog(books=3),
        wide_tree(width=8),
        parse_document("<a><b>7</b><b>9</b></a>"),
    ]


@pytest.fixture(scope="module")
def sequential(documents):
    return QueryService().evaluate_many(QUERIES, documents)


def test_await_evaluate_matches_the_sync_engine(documents):
    service = AsyncQueryService()

    async def main():
        return await service.evaluate("count(//*)", documents[0])

    assert asyncio.run(main()) == XPathEngine(documents[0]).evaluate("count(//*)")
    # The shared sync service's caches were used (and its counters moved).
    assert service.service.plans.stats.misses == 1


def test_await_evaluate_many_unsharded_and_sharded(documents, sequential):
    async def main():
        service = AsyncQueryService()
        unsharded = await service.evaluate_many(QUERIES, documents)
        sharded = await service.evaluate_many(QUERIES, documents, workers=3)
        return unsharded, sharded

    unsharded, sharded = asyncio.run(main())
    assert unsharded.values == sequential.values
    assert sharded.values == sequential.values
    assert sharded.workers == 3
    assert sharded.algorithms == sequential.algorithms


def test_async_service_shares_an_existing_service(documents):
    sync_service = QueryService(plan_capacity=8)
    service = AsyncQueryService(sync_service)
    assert service.service is sync_service

    async def main():
        return await service.evaluate("//b", documents[3])

    asyncio.run(main())
    assert sync_service.plans.stats.lookups == 1
    with pytest.raises(ValueError, match="not both"):
        AsyncQueryService(sync_service, plan_capacity=8)


def test_stream_many_yields_every_cell_exactly_once(documents, sequential):
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, workers=3)
    assert isinstance(stream, BatchStream)

    async def main():
        return [item async for item in stream]

    items = asyncio.run(main())
    assert all(isinstance(item, StreamItem) for item in items)
    seen = {(item.document_index, item.query_index) for item in items}
    assert len(items) == len(seen) == len(QUERIES) * len(documents)
    for item in items:
        assert item.value == sequential.values[item.document_index][item.query_index]
        assert item.query == QUERIES[item.query_index]
        assert item.algorithm == sequential.algorithms[item.query_index]


def test_stream_batch_equals_the_barrier_batch(documents, sequential):
    """After exhaustion, the stream's merged batch is indistinguishable
    from the barrier path: same values, exactly-summed stats."""
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, workers=3, shard_by="size-balanced")

    async def main():
        async for _ in stream:
            pass

    asyncio.run(main())
    batch = stream.batch()
    assert batch.values == sequential.values
    assert batch.workers == len(stream.shards) == 3
    for stats_name in ("plan_stats", "result_stats"):
        merged = getattr(batch, stats_name)
        for counter in ("hits", "misses", "evictions"):
            total = sum(shard[stats_name][counter] for shard in batch.shards)
            assert merged[counter] == total, (stats_name, counter)


def test_stream_stats_accumulate_incrementally(documents):
    """Mid-stream, the counters cover exactly the shards seen so far."""
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, workers=2)
    checkpoints = []

    async def main():
        seen_shards = set()
        async for item in stream:
            if item.shard_index not in seen_shards:
                seen_shards.add(item.shard_index)
                plan = stream.plan_stats
                checkpoints.append((len(stream.shards), plan["hits"] + plan["misses"]))

    asyncio.run(main())
    # One checkpoint per shard; completed-shard count and folded lookup
    # totals are both monotonic, and the first checkpoint covers at least
    # its own shard's lookups (each shard looks up every query).
    assert len(checkpoints) == 2
    assert checkpoints[0][0] <= checkpoints[1][0] == 2
    assert checkpoints[0][1] >= len(QUERIES)
    assert checkpoints[1][1] >= checkpoints[0][1]


def test_stream_batch_before_exhaustion_raises(documents):
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, workers=2)
    with pytest.raises(RuntimeError, match="fully consumed"):
        stream.batch()

    async def drain():
        async for _ in stream:
            pass

    asyncio.run(drain())
    assert stream.batch().values  # now available


def test_stream_early_close_cancels_cleanly(documents):
    """Breaking out of the stream must not hang or leak the loop."""
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, workers=3)

    async def main():
        async for _ in stream:
            break
        await stream.aclose()

    asyncio.run(main())  # completing (not hanging) is the assertion
    with pytest.raises(RuntimeError, match="fully consumed"):
        stream.batch()


def test_stream_surfaces_query_errors_at_prepare_time(documents):
    service = AsyncQueryService()
    with pytest.raises(XPathSyntaxError):
        service.stream_many(["//b["], documents, workers=2)


def test_streaming_yields_small_shards_before_the_big_one_finishes():
    """The point of streaming: on a skewed workload, results from small
    shards arrive while the heavy shard is still evaluating. Timing-free
    check: the big document's shard is not the first to surface."""
    # The skew must dwarf the GIL's ~5ms switch quantum: on a 1-CPU host
    # all shards timeslice, so a small big-shard (tens of ms) finishes
    # inside the first rotation and the completion order degenerates.
    # ~9k nodes × several heavy queries puts the big shard at hundreds
    # of ms while the small shards need ~1ms each.
    big = balanced_tree(depth=8, fanout=3)
    smalls = [parse_document(f"<a><b>{i}</b></a>") for i in range(6)]
    documents = [big] + smalls
    queries = [
        "/descendant::*[position() > count(child::*)]",
        "count(//*)",
        "/descendant::*[position() = last()]",
        "//c[. > 15]",
    ]
    service = AsyncQueryService()
    stream = service.stream_many(
        queries, documents, workers=4, shard_by="size-balanced"
    )

    async def main():
        first = None
        async for item in stream:
            if first is None:
                first = item
        return first

    first = asyncio.run(main())
    # Size-balanced LPT puts the big document alone in its shard; a small
    # shard must complete (and stream) first.
    assert first.document_index != 0


def test_async_evaluate_runs_off_the_event_loop_thread(documents):
    """The offload really leaves the loop thread (the loop stays free)."""
    service = AsyncQueryService()
    loop_thread = threading.current_thread()
    ticks = []

    async def ticker():
        for _ in range(3):
            ticks.append(time.monotonic())
            await asyncio.sleep(0)

    async def main():
        await asyncio.gather(
            service.evaluate("count(//*)", documents[0]), ticker()
        )

    asyncio.run(main())
    assert threading.current_thread() is loop_thread
    assert len(ticks) == 3


def test_stream_early_break_leaves_no_pending_tasks(documents):
    """Breaking out of the stream cancels the remaining shard tasks
    promptly AND awaits them: after the break, the loop holds no
    stragglers (the serving daemon's drain asserts a quiet loop)."""
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, workers=4)

    async def main():
        async for _ in stream:
            break
        await stream.aclose()
        # Everything except this coroutine must be done or gone.
        leftovers = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task() and not task.done()
        ]
        return leftovers

    assert asyncio.run(main()) == []


def test_stream_early_break_stats_stay_reconciled(documents):
    """Stats after an early break describe exactly the shards that
    completed — the incremental sums never over- or under-count."""
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, workers=len(documents))
    seen = []

    async def main():
        async for item in stream:
            seen.append(item)
            if len(seen) >= len(QUERIES):  # one full shard, then break
                break
        await stream.aclose()

    asyncio.run(main())
    completed_shards = {item.shard_index for item in seen}
    # Shard reports exist exactly for the shards that completed before
    # the break (a racing second shard may have finished too).
    assert len(stream.shards) >= len(completed_shards)
    # Plan-cache traffic reflects completed shards only: each shard
    # touches the cache once per query (a hit when the prepare phase
    # precompiled the plan, a miss otherwise).
    per_shard_lookups = len(set(QUERIES))
    traffic = stream.plan_stats["hits"] + stream.plan_stats["misses"]
    assert traffic == per_shard_lookups * len(stream.shards)
    # The incremental sums reconcile exactly with the per-shard reports.
    for key in ("hits", "misses", "evictions"):
        assert stream.plan_stats[key] == sum(
            report["plan_stats"][key] for report in stream.shards
        )
        assert stream.result_stats[key] == sum(
            report["result_stats"][key] for report in stream.shards
        )
    # Every yielded cell belongs to a shard whose results are final.
    for item in seen:
        assert stream._values[item.document_index][item.query_index] is not None


def test_stream_many_deadline_raises_typed_error_with_progress(documents):
    """A deadline-armed stream always terminates with the typed error
    carrying completed/total — never a hang (PR 10 serving contract)."""
    from repro.errors import DeadlineExceededError

    service = AsyncQueryService()
    stream = service.stream_many(
        QUERIES, documents, workers=2, deadline_seconds=0.0
    )

    async def main():
        results = []
        async for item in stream:
            results.append(item)
        return results

    with pytest.raises(DeadlineExceededError) as excinfo:
        asyncio.run(main())
    error = excinfo.value
    assert error.total == len(QUERIES) * len(documents)
    assert 0 <= error.completed < error.total
    assert stream.deadline_exceeded


def test_stream_many_without_deadline_is_unchanged(documents, sequential):
    service = AsyncQueryService()
    stream = service.stream_many(QUERIES, documents, deadline_seconds=None)

    async def main():
        return [item async for item in stream]

    items = asyncio.run(main())
    assert len(items) == len(QUERIES) * len(documents)
    assert not stream.deadline_exceeded


def test_stream_generous_deadline_completes_everything(documents):
    service = AsyncQueryService()
    stream = service.stream_many(
        QUERIES, documents, workers=2, deadline_seconds=60.0
    )

    async def main():
        return [item async for item in stream]

    items = asyncio.run(main())
    assert len(items) == stream.total_cells
    assert not stream.deadline_exceeded
    assert stream.batch().values  # exhausted normally: batch() works


def test_deadline_lapsing_after_the_last_cell_is_not_a_deadline(documents):
    """A batch whose cells all completed must end in StopAsyncIteration
    even when the deadline lapses right after the last yield — the final
    ``__anext__`` must never turn a fully-successful batch into a
    DeadlineExceededError (regression)."""
    service = AsyncQueryService()
    stream = service.stream_many(
        QUERIES, documents, workers=2, deadline_seconds=60.0
    )

    async def main():
        items = []
        while True:
            if len(items) == stream.total_cells:
                # Lapse the deadline between the last yield and the
                # final __anext__ — the worst-case race the daemon hits.
                stream._deadline = time.monotonic() - 1.0
            try:
                items.append(await stream.__anext__())
            except StopAsyncIteration:
                return items

    items = asyncio.run(main())
    assert len(items) == stream.total_cells
    assert not stream.deadline_exceeded
    assert stream.batch().values  # exhausted normally, stats reconciled
