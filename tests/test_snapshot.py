"""Binary snapshot codec: corruption fuzzing and byte-identity (PR 6).

Three properties carry the snapshot path:

* **Every corruption is a DocumentStoreError** — truncation at any
  boundary, bad magic, wrong version, column lengths that disagree with
  their blob, checksum failure, and structurally illegal node tables
  that nonetheless carry a valid CRC.
* **flat ≡ list ≡ Definition-1** — over the same corpus as
  ``tests/test_node_index.py``, the packed (memoryview) kernels, the
  boxed-list reference kernels, and the paper's Definition-1 scans all
  return identical node sets cell by cell.
* **Round-trip equality** — a decoded snapshot reproduces ``pre`` /
  ``post`` / ``size`` / ``depth`` / every partition exactly, and its
  index arrives adopted (``index_adoptions``), never rebuilt
  (``index_builds``).
"""

import random
import struct
import zlib

import pytest

from repro import stats
from repro.axes.axes import (
    ALL_AXES,
    INVERSE_INTERVAL_AXES,
    axis_set,
    fused_axis_set,
    fused_inverse_axis_set,
    kernel_mode_forced,
    matches_node_test,
)
from repro.errors import DocumentStoreError
from repro.workloads.documents import (
    book_catalog,
    deep_chain,
    random_document,
    running_example_document,
    wide_tree,
)
from repro.xml.index import NodeIndex, adopt_node_index, node_index
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    cached_snapshot,
    decode_snapshot,
    encode_snapshot,
)
from repro.xpath.ast import NodeTest

SEED = 20030614


def _corpus():
    rng = random.Random(SEED)
    documents = [
        running_example_document(),
        book_catalog(books=4),
        wide_tree(width=7),
        deep_chain(9),
        parse_document(
            '<a id="1">x<b id="2"><a id="3">100</a>y</b>'
            "<?target data?><!--note-->"
            '<c id="4" kind="k"><b id="5">1</b><b id="6">2</b></c></a>'
        ),
    ]
    documents += [random_document(rng, max_nodes=18) for _ in range(4)]
    return documents


_TESTS = [
    NodeTest("name", "a"),
    NodeTest("name", "b"),
    NodeTest("name", "price"),
    NodeTest("name", "id"),
    NodeTest("wildcard"),
    NodeTest("node"),
    NodeTest("text"),
    NodeTest("comment"),
    NodeTest("pi"),
    NodeTest("pi", "target"),
]


def _reseal(payload: bytes) -> bytes:
    """Append a fresh, *valid* CRC — for corruptions that must get past
    the checksum and be caught by structural validation."""
    return payload + struct.pack("<I", zlib.crc32(payload))


# ----------------------------------------------------------------------
# Corruption fuzzing
# ----------------------------------------------------------------------


def test_truncation_at_every_boundary_rejected():
    blob = encode_snapshot(running_example_document())
    lengths = {0, 1, 4, 7, 8, 11, 12, 15, 16, 19, 20}
    lengths.update(range(0, len(blob), max(1, len(blob) // 64)))
    lengths.add(len(blob) - 1)
    for length in sorted(lengths):
        with pytest.raises(DocumentStoreError):
            decode_snapshot(blob[:length])


def test_bad_magic_rejected():
    blob = encode_snapshot(parse_document("<a/>"))
    with pytest.raises(DocumentStoreError):
        decode_snapshot(b"NOTSNAP!" + blob[8:])
    with pytest.raises(DocumentStoreError):
        decode_snapshot(b"")
    with pytest.raises(DocumentStoreError):
        decode_snapshot("not bytes")


def test_wrong_version_rejected():
    blob = encode_snapshot(parse_document("<a/>"))
    payload = bytearray(blob[:-4])
    payload[8:12] = struct.pack("<I", SNAPSHOT_VERSION + 1)
    with pytest.raises(DocumentStoreError, match="version"):
        decode_snapshot(_reseal(bytes(payload)))


def test_checksum_failure_rejected():
    blob = encode_snapshot(book_catalog(books=2))
    # Flip one bit in every region of the payload: all must be caught.
    for offset in range(len(SNAPSHOT_MAGIC), len(blob) - 4, max(1, len(blob) // 40)):
        corrupted = bytearray(blob)
        corrupted[offset] ^= 0x40
        with pytest.raises(DocumentStoreError):
            decode_snapshot(bytes(corrupted))
    # And a flipped CRC itself.
    corrupted = bytearray(blob)
    corrupted[-1] ^= 0x01
    with pytest.raises(DocumentStoreError, match="checksum"):
        decode_snapshot(bytes(corrupted))


def test_mismatched_column_lengths_rejected():
    """A length table whose sum disagrees with its blob — resealed with
    a valid CRC so only the column check can catch it."""
    doc = parse_document("<a><b>hi</b></a>")
    blob = encode_snapshot(doc)
    payload = bytearray(blob[:-4])
    # The name column's first length entry lives right after the fixed
    # columns; corrupt the *declared node count* instead, which desyncs
    # every column length at once.
    payload[12:20] = struct.pack("<Q", len(doc.nodes) + 1)
    with pytest.raises(DocumentStoreError):
        decode_snapshot(_reseal(bytes(payload)))
    payload = bytearray(blob[:-4])
    payload[12:20] = struct.pack("<Q", 0)
    with pytest.raises(DocumentStoreError):
        decode_snapshot(_reseal(bytes(payload)))


def _columns_payload(kinds, parent_pre, size, post, depth, names, values):
    """Assemble a structurally arbitrary (CRC-valid) snapshot."""
    from array import array

    def column(ints):
        return array("q", ints).tobytes()

    def strings(items):
        lengths, blob = [], b""
        for item in items:
            if item is None:
                lengths.append(-1)
            else:
                data = item.encode("utf-8")
                lengths.append(len(data))
                blob += data
        return column(lengths) + struct.pack("<Q", len(blob)) + blob

    payload = (
        SNAPSHOT_MAGIC
        + struct.pack("<I", SNAPSHOT_VERSION)
        + struct.pack("<Q", len(kinds))
        + struct.pack("<I", 2)
        + b"id"
        + kinds
        + column(parent_pre)
        + column(size)
        + column(post)
        + column(depth)
        + strings(names)
        + strings(values)
    )
    return _reseal(payload)


def test_structurally_illegal_tables_rejected_despite_valid_crc():
    base = dict(
        kinds=b"DEA",
        parent_pre=[-1, 0, 1],
        size=[3, 2, 1],
        post=[2, 1, 0],
        depth=[0, 1, 2],
        names=[None, "a", "id"],
        values=[None, None, "1"],
    )
    # The base itself decodes.
    good = decode_snapshot(_columns_payload(**base))
    assert serialize(good) == '<a id="1"/>'

    def variant(**overrides):
        merged = dict(base, **overrides)
        return _columns_payload(**merged)

    bad_blobs = [
        variant(kinds=b"EEA"),  # no document node first
        variant(kinds=b"DDA"),  # second document node
        variant(kinds=b"DEZ"),  # unknown kind
        variant(parent_pre=[-1, 0, 5]),  # parent out of range
        variant(parent_pre=[-1, 0, 0]),  # attribute owned by document
        variant(size=[3, 1, 1]),  # wrong subtree size
        variant(post=[2, 0, 1]),  # wrong post order
        variant(depth=[0, 1, 1]),  # wrong depth
        variant(names=[None, None, "id"]),  # unnamed element
        variant(names=["d", "a", "id"]),  # named document node
        variant(kinds=b"DTA", names=[None, None, "id"]),  # attr under text
    ]
    for blob in bad_blobs:
        with pytest.raises(DocumentStoreError):
            decode_snapshot(blob)


def test_attribute_contiguity_enforced():
    # Attribute numbered after a child of its element (not contiguous).
    blob = _columns_payload(
        kinds=b"DETA",
        parent_pre=[-1, 0, 1, 1],
        size=[4, 3, 1, 1],
        post=[3, 2, 0, 1],
        depth=[0, 1, 2, 2],
        names=[None, "a", None, "id"],
        values=[None, None, "t", "1"],
    )
    with pytest.raises(DocumentStoreError, match="contiguous"):
        decode_snapshot(blob)


# ----------------------------------------------------------------------
# flat ≡ list ≡ Definition-1, and round-trip equality
# ----------------------------------------------------------------------


def _axis_answers(document, index):
    """Every (axis × test) node-set over a fixed context, computed
    through the fused kernels against ``index``'s representation."""
    answers = []
    contexts = [
        [document.root],
        list(document.nodes),
        document.nodes[-1:],
    ]
    for X in contexts:
        for axis in sorted(ALL_AXES):
            for test in _TESTS:
                answers.append(sorted(n.pre for n in fused_axis_set(document, axis, X, test)))
        for axis in sorted(INVERSE_INTERVAL_AXES):
            answers.append(
                sorted(n.pre for n in fused_inverse_axis_set(document, axis, X))
            )
    return answers


def test_flat_list_and_scan_kernels_are_byte_identical():
    for document in _corpus():
        packed = NodeIndex(document, packed=True)
        plain = NodeIndex(document, packed=False)
        # Swap representations through the cache by monkey-seeding: the
        # kernels consult node_index(document), so compare by evaluating
        # with each representation installed.
        from repro.xml import index as index_module

        with kernel_mode_forced("indexed"):
            index_module._INDEX_CACHE[document] = packed
            flat_answers = _axis_answers(document, packed)
            index_module._INDEX_CACHE[document] = plain
            list_answers = _axis_answers(document, plain)
        with kernel_mode_forced("scan"):
            scan_answers = _axis_answers(document, plain)
        assert flat_answers == list_answers == scan_answers
        index_module._INDEX_CACHE.pop(document, None)


def test_definition1_scan_agreement_on_snapshot_loaded_documents():
    rng = random.Random(SEED + 6)
    for document in _corpus():
        loaded = decode_snapshot(encode_snapshot(document))
        for axis in sorted(ALL_AXES):
            for test in rng.sample(_TESTS, 4):
                X = rng.sample(loaded.nodes, min(5, len(loaded.nodes)))
                fused = fused_axis_set(loaded, axis, X, test)
                scan = {
                    y
                    for y in axis_set(loaded, axis, X)
                    if matches_node_test(y, test, axis)
                }
                assert fused == scan, (axis, test)


def test_round_trip_columns_and_partitions_equal():
    for document in _corpus():
        original_index = node_index(document)
        loaded = decode_snapshot(encode_snapshot(document))
        loaded_index = node_index(loaded)
        assert loaded_index.packed
        for column in ("size", "post", "depth", "parent_pre"):
            assert list(getattr(loaded_index, column)) == list(
                getattr(original_index, column)
            ), column
        for group in ("by_tag", "by_attribute", "by_pi_target"):
            original_group = getattr(original_index, group)
            loaded_group = getattr(loaded_index, group)
            assert sorted(original_group) == sorted(loaded_group)
            for name in original_group:
                assert list(loaded_group[name]) == list(original_group[name])
        for kind in ("elements", "attributes", "non_attributes", "text_nodes",
                     "comments", "pis"):
            assert list(getattr(loaded_index, kind)) == list(
                getattr(original_index, kind)
            )
        for a, b in zip(document.nodes, loaded.nodes):
            assert (a.kind, a.name, a.value, a.pre, a.size) == (
                b.kind, b.name, b.value, b.pre, b.size,
            )
        loaded.validate()
        loaded_index.validate()


def test_decode_adopts_index_without_building():
    document = book_catalog(books=3)
    blob = encode_snapshot(document)
    before = stats.axis_kernel_stats.snapshot()
    loaded = decode_snapshot(blob)
    after = stats.axis_kernel_stats.snapshot()
    assert after["index_builds"] == before["index_builds"]
    assert after["index_adoptions"] == before["index_adoptions"] + 1
    # node_index() now hits the adopted entry — still no build.
    index = node_index(loaded)
    assert index.packed
    assert stats.axis_kernel_stats.snapshot()["index_builds"] == before["index_builds"]


def test_adopt_rejects_foreign_index():
    a, b = parse_document("<a/>"), parse_document("<b/>")
    with pytest.raises(ValueError):
        adopt_node_index(a, node_index(b))


def test_cached_snapshot_encodes_once_and_never_pins():
    import gc
    import weakref

    document = book_catalog(books=2)
    blob = cached_snapshot(document)
    assert cached_snapshot(document) is blob
    assert blob == encode_snapshot(document)
    ref = weakref.ref(document)
    del document
    gc.collect()
    assert ref() is None, "snapshot cache pinned the document"


def test_snapshot_preserves_custom_id_attribute():
    original = parse_document('<a key="k1"/>', id_attribute="key")
    loaded = decode_snapshot(encode_snapshot(original))
    assert loaded.id_attribute == "key"
    assert loaded.element_by_id("k1") is loaded.root_element


# ----------------------------------------------------------------------
# Typed corruption: SnapshotCorruptError with offset context (PR 10)
# ----------------------------------------------------------------------


def test_every_truncation_raises_typed_snapshot_corrupt_with_offset():
    """Truncation at every boundary surfaces the typed subclass with a
    byte offset — never a struct/checksum internal."""
    from repro.errors import SnapshotCorruptError

    blob = encode_snapshot(book_catalog(books=2))
    lengths = set(range(0, len(blob), max(1, len(blob) // 96)))
    lengths.update({0, 1, 7, 8, 11, 12, 19, 20, 23, 24, len(blob) - 5, len(blob) - 1})
    for length in sorted(lengths):
        with pytest.raises(SnapshotCorruptError) as excinfo:
            decode_snapshot(blob[:length])
        assert excinfo.value.offset is not None
        assert "at byte" in str(excinfo.value)


def test_bit_flip_fuzzing_raises_only_the_typed_error():
    """Byte-level corruption fuzzing: flip bytes everywhere (CRC catches
    them), and reseal a sample so deeper structural checks fire — every
    failure is SnapshotCorruptError, and no struct.error, ValueError,
    or UnicodeDecodeError ever leaks."""
    from repro.errors import SnapshotCorruptError

    rng = random.Random(20251008)
    blob = encode_snapshot(running_example_document())
    for _ in range(120):
        corrupted = bytearray(blob)
        offset = rng.randrange(len(corrupted))
        corrupted[offset] ^= 1 << rng.randrange(8)
        try:
            decode_snapshot(bytes(corrupted))
        except SnapshotCorruptError:
            pass  # the only acceptable failure type
    # Resealed corruption gets past the CRC; structural validation must
    # still classify it as SnapshotCorruptError.
    for _ in range(120):
        payload = bytearray(blob[:-4])
        offset = rng.randrange(len(SNAPSHOT_MAGIC), len(payload))
        payload[offset] ^= 1 << rng.randrange(8)
        try:
            decode_snapshot(_reseal(bytes(payload)))
        except SnapshotCorruptError:
            pass


def test_snapshot_corrupt_offsets_point_into_the_blob():
    from repro.errors import SnapshotCorruptError

    blob = encode_snapshot(parse_document("<a><b>hi</b></a>"))
    with pytest.raises(SnapshotCorruptError) as excinfo:
        decode_snapshot(b"NOTSNAP!" + blob[8:])
    assert excinfo.value.offset == 0  # magic lives at the start
    with pytest.raises(SnapshotCorruptError) as excinfo:
        corrupted = bytearray(blob)
        corrupted[-1] ^= 0x01
        decode_snapshot(bytes(corrupted))
    assert excinfo.value.offset == len(blob) - 4  # the CRC trailer


def test_type_errors_stay_plain_document_store_errors():
    """Passing a non-bytes object is a caller bug, not corruption — it
    must not masquerade as SnapshotCorruptError."""
    from repro.errors import SnapshotCorruptError

    with pytest.raises(DocumentStoreError) as excinfo:
        decode_snapshot("not bytes")
    assert not isinstance(excinfo.value, SnapshotCorruptError)


def test_store_load_surfaces_typed_corruption_from_the_sidecar(tmp_path):
    """Corrupting sidecar bytes on disk surfaces SnapshotCorruptError
    through DocumentStore.load, with the offset context intact."""
    from repro.errors import SnapshotCorruptError
    from repro.xml.store import DocumentStore

    store = DocumentStore(tmp_path / "cat.json")
    sidecar = store.save_snapshot("books", book_catalog(books=2))
    blob = sidecar.read_bytes()
    # Truncated sidecar.
    sidecar.write_bytes(blob[: len(blob) // 2])
    fresh = DocumentStore(tmp_path / "cat.json")
    with pytest.raises(SnapshotCorruptError) as excinfo:
        fresh.load("books")
    assert excinfo.value.offset is not None
    # Flipped byte (checksum catches it) — still the typed subclass.
    corrupted = bytearray(blob)
    corrupted[len(blob) // 3] ^= 0x10
    sidecar.write_bytes(bytes(corrupted))
    with pytest.raises(SnapshotCorruptError):
        DocumentStore(tmp_path / "cat.json").load("books")
    # Restoring the bytes restores the document.
    sidecar.write_bytes(blob)
    assert len(DocumentStore(tmp_path / "cat.json").load("books").nodes) > 1
