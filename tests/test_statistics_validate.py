"""Tests for document statistics and the integrity validator."""

import random

import pytest

from repro.workloads.documents import (
    balanced_tree,
    book_catalog,
    deep_chain,
    random_document,
    wide_tree,
)
from repro.xml.parser import parse_document
from repro.xml.statistics import document_statistics


def test_statistics_counts_by_kind():
    doc = parse_document('<a x="1">t<b/><!--c--><?p d?></a>')
    stats = document_statistics(doc)
    assert stats.total_nodes == len(doc)
    assert stats.elements == 2
    assert stats.attributes == 1
    assert stats.text_nodes == 1
    assert stats.comments == 1
    assert stats.processing_instructions == 1


def test_statistics_depth_and_fanout():
    chain = document_statistics(deep_chain(6))
    assert chain.max_depth == 6
    assert chain.max_fanout == 1
    wide = document_statistics(wide_tree(9))
    assert wide.max_depth == 2
    assert wide.max_fanout == 9
    assert wide.mean_fanout == 9.0


def test_statistics_tag_counts():
    stats = document_statistics(balanced_tree(depth=3, fanout=2, tags=("x", "y")))
    assert stats.tag_counts["x"] == 1 + 4  # levels 0 and 2
    assert stats.tag_counts["y"] == 2


def test_statistics_text_and_ids():
    stats = document_statistics(parse_document('<a id="1">abc<b>de</b></a>'))
    assert stats.total_text_bytes == 5
    assert stats.identified_elements == 1


def test_statistics_summary_is_readable():
    summary = document_statistics(book_catalog(books=2)).summary()
    assert "elements" in summary
    assert "depth" in summary
    assert "book×2" in summary


def test_mean_fanout_of_leaf_only_document():
    stats = document_statistics(parse_document("<a/>"))
    assert stats.mean_fanout == 0.0


# --- validate() ----------------------------------------------------------------

def test_validate_accepts_generated_documents():
    rng = random.Random(3)
    for _ in range(20):
        random_document(rng, max_nodes=20).validate()
    book_catalog(books=3).validate()
    deep_chain(5).validate()


def test_validate_catches_corruption():
    doc = parse_document("<a><b/><c/></a>")
    doc.root_element.children[0].size = 99
    with pytest.raises(AssertionError):
        doc.validate()


def test_validate_catches_broken_parent_link():
    doc = parse_document("<a><b/></a>")
    doc.root_element.children[0].parent = doc.root
    with pytest.raises(AssertionError):
        doc.validate()


def test_validate_requires_finalized():
    from repro.errors import DocumentNotFinalizedError
    from repro.xml.document import Document

    with pytest.raises(DocumentNotFinalizedError):
        Document().validate()
