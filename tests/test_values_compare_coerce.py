"""Tests for conversions (Figure 1's boolean/string/number rows) and the
comparison dispatch (§3.4 / Figure 1 RelOp/EqOp/GtOp rows)."""

import math

import pytest

from repro.values.coerce import convert, to_boolean, to_number_value, to_string_value
from repro.values.compare import compare_values
from repro.xml.parser import parse_document


@pytest.fixture(scope="module")
def doc():
    return parse_document('<r><a id="1">10</a><a id="2">20</a><a id="3">x</a></r>')


def nodes(doc, *keys):
    return {doc.element_by_id(k) for k in keys}


# --- boolean() ------------------------------------------------------------

def test_boolean_of_numbers():
    assert to_boolean(1.0, "num") is True
    assert to_boolean(-0.5, "num") is True
    assert to_boolean(0.0, "num") is False
    assert to_boolean(-0.0, "num") is False
    assert to_boolean(float("nan"), "num") is False
    assert to_boolean(float("inf"), "num") is True


def test_boolean_of_strings():
    assert to_boolean("", "str") is False
    assert to_boolean("0", "str") is True  # nonempty, even though numerically 0
    assert to_boolean("false", "str") is True


def test_boolean_of_node_sets(doc):
    assert to_boolean(set(), "nset") is False
    assert to_boolean(nodes(doc, "1"), "nset") is True


# --- string() --------------------------------------------------------------

def test_string_of_node_set_takes_first_in_document_order(doc):
    assert to_string_value(nodes(doc, "2", "1"), "nset") == "10"
    assert to_string_value(set(), "nset") == ""


def test_string_of_scalars():
    assert to_string_value(4.0, "num") == "4"
    assert to_string_value(True, "bool") == "true"
    assert to_string_value(False, "bool") == "false"
    assert to_string_value("x", "str") == "x"


# --- number() ----------------------------------------------------------------

def test_number_of_scalars():
    assert to_number_value("12", "str") == 12.0
    assert math.isnan(to_number_value("x", "str"))
    assert to_number_value(True, "bool") == 1.0
    assert to_number_value(False, "bool") == 0.0


def test_number_of_node_set_goes_through_string(doc):
    assert to_number_value(nodes(doc, "1"), "nset") == 10.0
    assert math.isnan(to_number_value(nodes(doc, "3"), "nset"))
    assert math.isnan(to_number_value(set(), "nset"))


def test_convert_dispatch(doc):
    assert convert(5.0, "num", "str") == "5"
    assert convert("", "str", "bool") is False
    assert convert(nodes(doc, "1"), "nset", "num") == 10.0
    with pytest.raises(ValueError):
        convert("x", "str", "nset")


# --- scalar comparisons --------------------------------------------------------

def test_equality_bool_dominates():
    # bool vs anything: other side converted to boolean.
    assert compare_values("=", True, "bool", "nonempty", "str") is True
    assert compare_values("=", False, "bool", "", "str") is True
    assert compare_values("=", True, "bool", 0.0, "num") is False
    assert compare_values("!=", True, "bool", 0.0, "num") is True


def test_equality_num_dominates_over_string():
    assert compare_values("=", 10.0, "num", "10", "str") is True
    assert compare_values("=", 10.0, "num", "x", "str") is False
    assert compare_values("!=", 10.0, "num", "x", "str") is True  # NaN != anything


def test_string_equality():
    assert compare_values("=", "a", "str", "a", "str") is True
    assert compare_values("!=", "a", "str", "b", "str") is True


def test_relational_always_numeric():
    # '10' < '9' as strings would be True lexicographically; XPath says
    # convert both to number: 10 < 9 is False.
    assert compare_values("<", "10", "str", "9", "str") is False
    assert compare_values(">", "10", "str", "9", "str") is True
    assert compare_values("<=", True, "bool", 1.0, "num") is True


def test_nan_relational_false():
    assert compare_values("<", "x", "str", "1", "str") is False
    assert compare_values(">=", "x", "str", "1", "str") is False


# --- node-set comparisons ----------------------------------------------------

def test_nset_vs_num_existential(doc):
    S = nodes(doc, "1", "2")
    assert compare_values("=", S, "nset", 20.0, "num") is True
    assert compare_values("=", S, "nset", 30.0, "num") is False
    assert compare_values("<", S, "nset", 15.0, "num") is True  # 10 < 15
    assert compare_values(">", S, "nset", 15.0, "num") is True  # 20 > 15
    assert compare_values(">", S, "nset", 25.0, "num") is False


def test_nset_with_unparsable_member(doc):
    S = nodes(doc, "3")  # strval "x" -> NaN
    assert compare_values("=", S, "nset", 0.0, "num") is False
    assert compare_values("!=", S, "nset", 0.0, "num") is True  # NaN != 0


def test_nset_vs_str(doc):
    S = nodes(doc, "1", "3")
    assert compare_values("=", S, "nset", "x", "str") is True
    assert compare_values("=", S, "nset", "y", "str") is False
    assert compare_values("!=", S, "nset", "x", "str") is True  # "10" != "x"
    # Relational vs string goes numeric: only "10" parses.
    assert compare_values("<", S, "nset", "11", "str") is True
    assert compare_values(">", S, "nset", "11", "str") is False


def test_nset_vs_bool(doc):
    assert compare_values("=", nodes(doc, "1"), "nset", True, "bool") is True
    assert compare_values("=", set(), "nset", False, "bool") is True
    assert compare_values("!=", set(), "nset", True, "bool") is True


def test_empty_nset_comparisons_always_false(doc):
    assert compare_values("=", set(), "nset", 0.0, "num") is False
    assert compare_values("!=", set(), "nset", 0.0, "num") is False
    assert compare_values("=", set(), "nset", "", "str") is False


def test_nset_vs_nset_equality(doc):
    S1 = nodes(doc, "1", "2")  # {"10","20"}
    S2 = nodes(doc, "2", "3")  # {"20","x"}
    assert compare_values("=", S1, "nset", S2, "nset") is True  # share "20"
    assert compare_values("=", nodes(doc, "1"), "nset", nodes(doc, "3"), "nset") is False


def test_nset_vs_nset_inequality_subtleties(doc):
    one = nodes(doc, "1")
    also_one = {next(iter(nodes(doc, "1")))}
    assert compare_values("!=", one, "nset", also_one, "nset") is False  # "10" != "10" has no witness
    assert compare_values("!=", nodes(doc, "1", "2"), "nset", one, "nset") is True


def test_nset_vs_nset_relational(doc):
    S1 = nodes(doc, "1")  # 10
    S2 = nodes(doc, "2")  # 20
    assert compare_values("<", S1, "nset", S2, "nset") is True
    assert compare_values(">", S1, "nset", S2, "nset") is False
    assert compare_values(">", S2, "nset", S1, "nset") is True
    # NaN members contribute nothing.
    assert compare_values("<", nodes(doc, "3"), "nset", S2, "nset") is False


def test_flipped_operand_order(doc):
    S = nodes(doc, "1", "2")
    # scalar RelOp nset must mirror nset RelOp scalar with flipped op.
    assert compare_values("<", 15.0, "num", S, "nset") is True  # 15 < 20
    assert compare_values(">", 25.0, "num", S, "nset") is True  # 25 > 10
    assert compare_values(">", 5.0, "num", S, "nset") is False
