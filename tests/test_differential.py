"""Differential testing: five independent evaluators, one answer.

The strongest correctness oracle available for this reproduction: the
naive, E↑, E↓, MINCONTEXT, and OPTMINCONTEXT evaluators share almost no
code paths for path evaluation, so agreement across a broad corpus of
(document, query) pairs pins the semantics down tightly. Core XPath
queries additionally run through the linear-time evaluator.
"""

import math
import random

import pytest

from repro.engine import XPathEngine
from repro.workloads.documents import random_document, running_example_document
from repro.workloads.queries import random_query
from repro.xml.parser import parse_document

FULL = ("naive", "topdown", "bottomup", "mincontext", "optmincontext")
FAST = ("naive", "topdown", "mincontext", "optmincontext")

#: Hand-picked queries that stress different machinery combinations.
CORPUS = [
    "//a",
    "/descendant::*[position() = last()]",
    "//b[position() > 1]/c",
    "//*[count(child::*) > 1]",
    "//a[b = c]",
    "//*[. = 100]",
    "//*[not(following::*)]",
    "//*[boolean(following-sibling::*[position() != last()])]",
    "//a[//b]",
    "//*[ancestor::*[2]]",
    "//*[preceding::*[. = '1']]",
    "sum(//a) + count(//b)",
    "string(//*[1])",
    "//*[self::a or self::b][last()]",
    "//*[position() mod 2 = 1]",
    "//a/following::b[1]",
    "id('3')/..",
    "//*[@kind]/@kind",
    "//*[string-length(concat('x', 'y')) = 2]",
    "(//a | //b)[2]",
    "//*[sum(child::*) > 2]",
    "//*[child::*[position() = last() - 1]]",
    "-(-count(//*))",
    "//*[10 >= .]",
]


def results_equal(a, b):
    """Value equality with NaN = NaN (scalar results may be NaN)."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def check_agreement(engine, query, algorithms):
    compiled = engine.compile(query)
    outcomes = {}
    for name in algorithms:
        outcomes[name] = engine.evaluate(compiled, algorithm=name)
    if compiled.is_core_xpath:
        outcomes["corexpath"] = engine.evaluate(compiled, algorithm="corexpath")
    baseline_name = algorithms[0]
    baseline = outcomes[baseline_name]
    for name, value in outcomes.items():
        assert results_equal(value, baseline), (
            f"{name} vs {baseline_name} on {query!r}: {value!r} != {baseline!r}"
        )
    return baseline


@pytest.mark.parametrize("query", CORPUS)
def test_corpus_on_running_example(query):
    engine = XPathEngine(running_example_document())
    check_agreement(engine, query, FULL)


@pytest.mark.parametrize("query", CORPUS)
def test_corpus_on_irregular_document(query):
    doc = parse_document(
        '<a id="1">x<b id="2"><a id="3">100</a>y</b>'
        '<c id="4" kind="k"><b id="5">1</b><b id="6">2</b><b id="7">2</b></c>'
        '<!--comment--><d id="8"/></a>'
    )
    engine = XPathEngine(doc)
    check_agreement(engine, query, FULL)


def test_random_queries_on_random_documents():
    """The fuzz loop: 40 documents × 6 queries, fixed seed."""
    rng = random.Random(20030612)
    for round_number in range(40):
        doc = random_document(rng, max_nodes=14)
        engine = XPathEngine(doc)
        algorithms = FULL if len(doc.nodes) <= 18 else FAST
        for _ in range(6):
            query = random_query(rng)
            check_agreement(engine, query, algorithms)


def test_random_queries_with_varied_context_nodes():
    """Agreement must hold for arbitrary context nodes, not just the root."""
    rng = random.Random(7)
    doc = random_document(rng, max_nodes=16)
    engine = XPathEngine(doc)
    elements = doc.elements()
    for _ in range(25):
        query = random_query(rng, max_steps=3)
        context = rng.choice(elements)
        compiled = engine.compile(query)
        results = {
            name: engine.evaluate(compiled, context_node=context, algorithm=name)
            for name in FAST
        }
        baseline = results[FAST[0]]
        for name, value in results.items():
            assert results_equal(value, baseline), (query, context.path(), name)


def test_agreement_from_non_element_context_nodes():
    """Context nodes may be text, comment, PI, or attribute nodes; the
    algorithms must agree there too (axes behave differently at
    attributes — see repro/axes/axes.py)."""
    doc = parse_document(
        '<r k="key"><a id="1">one<!--note--><?pi data?></a><a id="2">two</a></r>'
    )
    engine = XPathEngine(doc)
    odd_contexts = [
        node for node in doc.nodes
        if node.is_text or node.is_comment or node.is_processing_instruction
        or node.is_attribute
    ]
    assert len(odd_contexts) >= 5
    queries = [
        "..", "following::*", "preceding::node()", "ancestor::*[1]",
        "self::node()", "string(.)", "count(following-sibling::node())",
        "//a[. = string(current) or position() = 1]".replace("current", "'one'"),
    ]
    for context in odd_contexts:
        for query in queries:
            compiled = engine.compile(query)
            reference = engine.evaluate(compiled, context_node=context, algorithm="topdown")
            for name in ("naive", "mincontext", "optmincontext"):
                got = engine.evaluate(compiled, context_node=context, algorithm=name)
                assert results_equal(got, reference), (query, context.path(), name)
