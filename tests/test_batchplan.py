"""Tests for the batch-shared step DAG (:mod:`repro.service.batchplan`).

The contract under test, end to end: sharing only ever removes work —
``evaluate_many(share=True)`` returns exactly the values of independent
evaluation (every backend, every plan shape), ``share=False`` reproduces
the independent path byte-identically *including stats*, and the
:class:`~repro.stats.BatchPlanStats` counters satisfy their
reconciliation identities exactly.
"""

import random

import pytest

from repro.axes.axes import (
    INTERVAL_AXES,
    axis_nodes,
    axis_test_nodes,
    kernel_mode_forced,
    matches_node_test,
)
from repro.service import (
    AsyncQueryService,
    QueryService,
    ShardedExecutor,
    build_batch_plan,
)
from repro.service.batchplan import clone_expr
from repro.service.scheduler import merge_batch_plan_snapshots
from repro.service.specialize import PlanSpecializer, document_profile
from repro.workloads.documents import (
    balanced_tree,
    book_catalog,
    deep_chain,
    random_document,
    running_example_document,
    wide_tree,
)
from repro.xml.parser import parse_document
from repro.xpath.ast import NodeTest

SEED = 20030613

#: A prefix-heavy batch: one deep shared spine, several tails, plus
#: deliberately unsharable shapes (scalar, union, relative) and a
#: duplicate (exercises the distinct-plan handling in the DAG build).
QUERIES = [
    "//book/title",
    "//book/author",
    "//book/chapter/section",
    "//book[price > 20]/title",
    "//book/title",  # duplicate
    "//chapter",
    "/descendant-or-self::node()/child::book/child::author",  # ≡ //book/author
    "count(//book)",
    "//title | //author",
    "//book[position() = 1]/chapter",
]


@pytest.fixture(scope="module")
def documents():
    return [
        book_catalog(books=4),
        book_catalog(books=2, chapters_per_book=5),
        running_example_document(),
        parse_document("<book><title>solo</title><price>30</price></book>"),
    ]


def _independent_values(queries, docs, **service_kwargs):
    """The reference: one fresh service, a plain per-cell loop."""
    service = QueryService(**service_kwargs)
    plans = [service.plan(q) for q in queries]
    values = []
    for document in docs:
        session = service.session(document)
        values.append([session.evaluate(plan, algorithm="auto") for plan in plans])
    return values


# ----------------------------------------------------------------------
# DAG construction
# ----------------------------------------------------------------------


def test_step_keys_canonicalize_syntactic_variants():
    service = QueryService()
    short = service.plan("//b").traits.step_keys
    long = service.plan("/descendant-or-self::node()/child::b").traits.step_keys
    assert short == ("descendant-or-self::node()", "child::b")
    assert short == long


def test_step_keys_empty_for_unsharable_shapes():
    service = QueryService()
    for query in ("count(//b)", "//a | //b", "b/c", "//b/text()[1] = '10'"):
        assert service.plan(query).traits.step_keys == (), query


def test_dag_unifies_common_prefixes():
    service = QueryService()
    plans = [service.plan(q) for q in QUERIES]
    batch = build_batch_plan(plans)
    assert batch.shared
    chains = set(batch.nodes)
    # The universal //-spine and the //book prefix are shared by several
    # plans each; every materialized prefix has >= 2 consumers.
    assert ("descendant-or-self::node()",) in chains
    assert ("descendant-or-self::node()", "child::book") in chains
    assert all(node.consumers >= 2 for node in batch.nodes.values())
    # Parent links point at the longest materialized proper prefix.
    book = batch.nodes[("descendant-or-self::node()", "child::book")]
    assert book.parent == ("descendant-or-self::node()",)
    assert len(book.residual_steps) == 1


def test_dag_entries_resume_from_longest_prefix():
    service = QueryService()
    plans = [service.plan(q) for q in QUERIES]
    batch = build_batch_plan(plans)
    by_source = {e.plan.source: e for e in batch.entries}
    title = by_source["//book/title"]
    assert title.base == ("descendant-or-self::node()", "child::book")
    assert len(title.residual_steps) == 1 and title.residual_core
    # The full-XPath predicate keeps the plan sharable on the spine but
    # marks its residual as non-Core (ConstantNodeSet-rooted plan).
    priced = by_source["//book[price > 20]/title"]
    assert priced.base == ("descendant-or-self::node()",)
    assert not priced.residual_core
    # Unsharable plans stay independent.
    assert by_source["count(//book)"].base is None
    assert not by_source["count(//book)"].sharable


def test_syntactic_variants_share_one_distinct_plan():
    service = QueryService()
    plans = [service.plan(q) for q in ("//b", "/descendant-or-self::node()/child::b")]
    # Distinct cache keys (different sources) but identical chains: both
    # entries resume from the same materialized prefix.
    batch = build_batch_plan(plans)
    assert ("descendant-or-self::node()", "child::b") in batch.nodes
    assert all(entry.base == ("descendant-or-self::node()", "child::b") == entry.chain
               for entry in batch.entries)
    assert all(not entry.residual_steps for entry in batch.entries)


def test_build_batch_plan_empty_and_degenerate():
    assert build_batch_plan([]) is None
    service = QueryService()
    lone = build_batch_plan([service.plan("//b")])
    assert lone is not None and not lone.shared  # no prefix shared twice


def test_clone_expr_gives_fresh_uids_and_preserves_types():
    service = QueryService()
    ast = service.plan("//b[position() = 1]/c").ast
    copy = clone_expr(ast)
    assert copy is not ast
    assert copy.value_type == ast.value_type
    originals = set()

    def collect(expr, into):
        into.add(id(expr))
        for child in getattr(expr, "steps", []):
            collect(child, into)
            for predicate in child.predicates:
                collect(predicate, into)

    collect(ast, originals)
    copies: set = set()
    collect(copy, copies)
    assert originals.isdisjoint(copies)


def test_describe_renders_the_dag():
    service = QueryService()
    plans = [service.plan(q) for q in QUERIES]
    text = build_batch_plan(plans).describe()
    assert "materialized prefix(es)" in text
    assert "prefix[0]: /descendant-or-self::node()  <- root" in text
    assert "base=prefix[" in text
    assert "full-XPath predicates" in text
    assert "independent (not a sharable absolute location path)" in text


# ----------------------------------------------------------------------
# Value identity: share on == share off == independent loop
# ----------------------------------------------------------------------


def test_share_on_matches_independent_evaluation(documents):
    expected = _independent_values(QUERIES, documents)
    batch = QueryService().evaluate_many(QUERIES, documents)
    assert batch.values == expected
    assert batch.batch_plan  # sharing actually ran


def test_share_off_matches_independent_evaluation(documents):
    batch = QueryService().evaluate_many(QUERIES, documents, share=False)
    assert batch.values == _independent_values(QUERIES, documents)
    assert batch.batch_plan == {}


def test_share_on_off_identical_without_specialization(documents):
    on = QueryService(specialize=False).evaluate_many(QUERIES, documents)
    off = QueryService(specialize=False).evaluate_many(
        QUERIES, documents, share=False
    )
    assert on.values == off.values


def test_no_share_reproduces_independent_stats_exactly(documents):
    """``--no-share`` must be byte-identical to the pre-sharing service:
    same values *and* same per-batch cache stats as a manual loop."""
    manual = QueryService()
    plans = [manual.plan(q) for q in QUERIES]
    for document in documents:
        session = manual.session(document)
        for plan in plans:
            session.evaluate(plan, algorithm="auto")
    batch = QueryService().evaluate_many(QUERIES, documents, share=False)
    assert batch.plan_stats["hits"] == manual.cache_stats()["plan_cache"]["hits"]
    assert batch.plan_stats["misses"] == manual.cache_stats()["plan_cache"]["misses"]
    assert (
        batch.result_stats["hits"]
        == manual.cache_stats()["result_cache"]["hits"]
    )
    assert (
        batch.result_stats["misses"]
        == manual.cache_stats()["result_cache"]["misses"]
    )


def test_forced_algorithm_never_shares(documents):
    batch = QueryService().evaluate_many(
        ["//book/title", "//book/author"], documents, algorithm="mincontext"
    )
    assert batch.batch_plan == {}
    assert batch.values == _independent_values(
        ["//book/title", "//book/author"], documents
    )


def test_shared_memo_entries_compatible_with_independent_calls(documents):
    """A shared run's memo entries serve later independent evaluations
    of the same plans (same key space), and vice versa."""
    service = QueryService()
    batch = service.evaluate_many(QUERIES, documents)
    session = service.session(documents[0])
    before = service.result_cache_stats()["hits"]
    plan = service.plan("//book/title")
    value = session.evaluate(plan, algorithm="auto")
    assert service.result_cache_stats()["hits"] == before + 1
    assert value == batch.value(0, 0)


def test_positional_predicates_survive_the_split(documents):
    """Splitting at a step boundary must preserve positions: predicates
    rank candidates per origin node, not over the unioned prefix set."""
    queries = [
        "//chapter[1]",
        "//chapter[last()]",
        "//book/chapter[position() = 2]",
        "//book/chapter",
    ]
    expected = _independent_values(queries, documents)
    batch = QueryService().evaluate_many(queries, documents)
    assert batch.values == expected
    assert batch.batch_plan["shared_plans"] >= 3


def test_fuzzed_share_identity():
    """Random full-grammar batches: share on == share off, documents
    random, every seed."""
    from repro.workloads.queries import random_full_query

    rng = random.Random(SEED)
    docs = [random_document(rng, max_nodes=24) for _ in range(3)]
    queries = [random_full_query(rng) for _ in range(12)]
    queries += ["//a/b", "//a/b/c", "//a", "/descendant-or-self::node()/child::a"]
    on = QueryService().evaluate_many(queries, docs)
    off = QueryService().evaluate_many(queries, docs, share=False)
    assert on.values == off.values


# ----------------------------------------------------------------------
# Exact counters
# ----------------------------------------------------------------------


def test_batch_plan_counters_reconcile(documents):
    batch = QueryService().evaluate_many(QUERIES, documents)
    plan = batch.batch_plan
    assert plan["cells"] == (
        plan["memo_hits"] + plan["shared_evaluations"] + plan["fallback_cells"]
    )
    assert plan["fallback_cells"] == 0
    assert plan["steps_saved"] == plan["steps_independent"] - plan["steps_shared"]
    assert plan["steps_saved"] >= 0
    # The duplicate query and the //-variant guarantee memo hits; the
    # two materialized prefixes are computed once per document.
    assert plan["memo_hits"] >= 2 * len(documents)
    assert plan["prefix_evaluations"] <= plan["prefix_nodes"] * len(documents)


def test_prefixes_materialize_lazily():
    """A prefix whose consumers are all memo hits is never computed."""
    service = QueryService()
    docs = [running_example_document()]
    first = service.evaluate_many(["//b", "//b/c"], docs)
    assert first.batch_plan["prefix_evaluations"] >= 1
    again = service.evaluate_many(["//b", "//b/c"], docs)
    assert again.batch_plan["memo_hits"] == 2
    assert again.batch_plan["prefix_evaluations"] == 0


def test_sharing_reduces_step_applications(documents):
    """The point of the DAG: strictly fewer location-step sweeps than
    independent evaluation on a prefix-heavy batch."""
    batch = QueryService().evaluate_many(QUERIES, documents)
    assert batch.batch_plan["steps_saved"] > 0


def test_merge_batch_plan_snapshots_sums_and_preserves_emptiness():
    a = {"cells": 3, "memo_hits": 1, "shared_evaluations": 2, "fallback_cells": 0,
         "sharable_plans": 2, "shared_plans": 2, "independent_plans": 0,
         "prefix_nodes": 1, "prefix_evaluations": 1, "prefix_memo_hits": 0,
         "steps_independent": 6, "steps_shared": 3, "steps_saved": 3}
    merged = merge_batch_plan_snapshots([a, {}, a])
    assert merged["cells"] == 6
    assert merged["steps_saved"] == 6
    assert merged["prefix_nodes"] == 2
    # All-empty (every shard ran share=False or unsharable) stays {}.
    assert merge_batch_plan_snapshots([{}, {}]) == {}
    assert merge_batch_plan_snapshots([]) == {}


# ----------------------------------------------------------------------
# Sharded + async paths
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_sharded_backends_match_sequential_values(documents, backend):
    service = QueryService()
    sequential = service.evaluate_many(QUERIES, documents)
    sharded = QueryService().evaluate_many(
        QUERIES, documents, workers=2, backend=backend
    )
    assert sharded.values == sequential.values
    merged = sharded.batch_plan
    # Cell counters sum across shards to the unsharded totals; the
    # plan-shape fields describe the per-shard DAG fleet instead.
    assert merged["cells"] == sequential.batch_plan["cells"]
    assert merged["shared_evaluations"] + merged["memo_hits"] == merged["cells"]
    assert merged["steps_saved"] >= 0


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_sharded_no_share_is_empty_and_identical(documents, backend):
    sharded = QueryService().evaluate_many(
        QUERIES, documents, workers=2, backend=backend, share=False
    )
    assert sharded.batch_plan == {}
    assert sharded.values == _independent_values(QUERIES, documents)


def test_executor_forwards_share_knob(documents):
    executor = ShardedExecutor(workers=2, backend="thread")
    on = executor.execute(QUERIES, documents)
    off = executor.execute(QUERIES, documents, share=False)
    assert on.values == off.values
    assert on.batch_plan and off.batch_plan == {}


def test_async_paths_carry_batch_plan(documents):
    import asyncio

    async def run():
        service = AsyncQueryService(QueryService())
        direct = await service.evaluate_many(QUERIES, documents)
        stream = service.stream_many(QUERIES, documents, workers=2)
        items = []
        async for item in stream:
            items.append(item)
        return direct, stream.batch(), items

    direct, streamed, items = asyncio.run(run())
    expected = _independent_values(QUERIES, documents)
    assert direct.values == expected
    assert streamed.values == expected
    assert direct.batch_plan["cells"] > 0
    assert streamed.batch_plan["cells"] > 0
    assert len(items) == len(QUERIES) * len(documents)


def test_async_no_share_stays_empty(documents):
    import asyncio

    async def run():
        service = AsyncQueryService(QueryService())
        return await service.evaluate_many(QUERIES, documents, share=False)

    batch = asyncio.run(run())
    assert batch.batch_plan == {}
    assert batch.values == _independent_values(QUERIES, documents)


# ----------------------------------------------------------------------
# Residual pricing (specialize_residual)
# ----------------------------------------------------------------------


def test_specialize_residual_picks_table_evaluators():
    service = QueryService()
    plan = service.plan("//book[price > 20]/title")
    small = document_profile(book_catalog(books=2))
    physical = service.specializer.specialize_residual(
        plan, small, covered=1, total=3
    )
    assert physical.algorithm in ("mincontext", "optmincontext")
    assert "materialized prefix" in physical.rationale


def test_specialize_residual_guarantee_clamp():
    specializer = PlanSpecializer(guarantee_nodes=10)
    service = QueryService()
    plan = service.plan("//book/chapter/section")
    big = document_profile(balanced_tree(depth=4, fanout=3))
    assert big.total_nodes > 10
    physical = specializer.specialize_residual(plan, big, covered=2, total=3)
    assert physical.algorithm == "optmincontext"


def test_specialize_residual_scales_with_remaining_work():
    service = QueryService()
    plan = service.plan("//book/chapter/section")
    profile = document_profile(book_catalog(books=3))
    nearly_done = service.specializer.specialize_residual(
        plan, profile, covered=2, total=3
    )
    untouched = service.specializer.specialize_residual(
        plan, profile, covered=0, total=3
    )
    cheapest = lambda physical: min(cost for _, cost in physical.estimates)
    assert cheapest(nearly_done) <= cheapest(untouched)


# ----------------------------------------------------------------------
# Profile-bucketed specializer memo
# ----------------------------------------------------------------------


def test_hot_profile_cannot_evict_other_buckets():
    specializer = PlanSpecializer(memo_capacity=8)
    service = QueryService()
    cold_profile = document_profile(running_example_document())
    hot_profile = document_profile(book_catalog(books=3))
    assert cold_profile.key != hot_profile.key
    cold_plans = [service.plan(q) for q in ("//a", "//b", "//c")]
    for plan in cold_plans:
        specializer.specialize(plan, cold_profile)
    # Hammer the hot profile far past capacity.
    for index in range(32):
        specializer.specialize(service.plan(f"//t{index}"), hot_profile)
    hits_before = specializer.stats.snapshot()["hits"]
    for plan in cold_plans:
        specializer.specialize(plan, cold_profile)
    # Every cold entry survived the burst: pure hits, no re-selection.
    assert specializer.stats.snapshot()["hits"] == hits_before + len(cold_plans)
    snapshot = specializer.stats.snapshot()
    # Exact accounting: memo size == misses - evictions, within capacity.
    assert len(specializer._order) <= 8
    assert snapshot["misses"] - snapshot["evictions"] == len(specializer._order)


def test_bucketed_memo_degenerates_to_lru_on_tied_buckets():
    specializer = PlanSpecializer(memo_capacity=2)
    service = QueryService()
    profiles = [
        document_profile(running_example_document()),
        document_profile(book_catalog(books=2)),
        document_profile(wide_tree(width=5)),
    ]
    plan = service.plan("//b")
    for profile in profiles:  # one entry per bucket; third insert evicts LRU
        specializer.specialize(plan, profile)
    snapshot = specializer.stats.snapshot()
    assert len(specializer._order) == 2
    assert snapshot["evictions"] == 1
    # The oldest (first) profile was the victim; the last two still hit.
    specializer.specialize(plan, profiles[1])
    specializer.specialize(plan, profiles[2])
    assert specializer.stats.snapshot()["hits"] == 2


# ----------------------------------------------------------------------
# Fused per-node axis kernels (axis_test_nodes)
# ----------------------------------------------------------------------


def _axis_corpus():
    rng = random.Random(SEED + 1)
    return [
        running_example_document(),
        book_catalog(books=3),
        deep_chain(8),
        wide_tree(width=6),
    ] + [random_document(rng, max_nodes=20) for _ in range(3)]


@pytest.mark.parametrize("mode", ["auto", "indexed", "scan"])
def test_axis_test_nodes_matches_scan_in_proximity_order(mode):
    """The per-node fused dispatch returns the *list* (order included)
    of the enumerate-then-filter reference, every axis, every mode."""
    tests = [NodeTest("node"), NodeTest("name", "b"), NodeTest("name", "title"),
             NodeTest("wildcard"), NodeTest("text")]
    axes = sorted(INTERVAL_AXES) + ["child", "parent", "ancestor", "self"]
    with kernel_mode_forced(mode):
        for document in _axis_corpus():
            for node in document.nodes:
                for axis in axes:
                    for test in tests:
                        expected = [
                            candidate
                            for candidate in axis_nodes(document, axis, node)
                            if matches_node_test(candidate, test, axis)
                        ]
                        got = axis_test_nodes(document, axis, node, test)
                        assert got == expected, (mode, axis, test.kind, node.pre)


def test_axis_test_nodes_used_by_positional_evaluation():
    """The paper's running positional example gives identical values
    under forced kernel modes (the dispatch is behavior-invisible)."""
    document = book_catalog(books=4)
    query = "//book/descendant::*[position() = 2]"
    results = {}
    for mode in ("auto", "indexed", "scan"):
        with kernel_mode_forced(mode):
            service = QueryService()
            results[mode] = service.evaluate_many([query], [document]).values
    assert results["auto"] == results["indexed"] == results["scan"]
