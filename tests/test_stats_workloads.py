"""Tests for the instrumentation hooks and the workload generators."""

import random

import pytest

from repro import stats
from repro.engine import XPathEngine
from repro.workloads.documents import (
    balanced_tree,
    book_catalog,
    deep_chain,
    doubling_document,
    numbered_line,
    random_document,
    running_example_document,
    wide_tree,
)
from repro.workloads.queries import (
    core_family,
    doubling_query,
    example9_query,
    position_heavy_query,
    random_query,
    running_example_query,
    wadler_family,
)
from repro.xpath.fragments import is_core_xpath, is_extended_wadler
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance


# --- stats ----------------------------------------------------------------

def test_collect_counts():
    with stats.collect() as collected:
        stats.count("things")
        stats.count("things", 2)
    assert collected.get("things") == 3
    assert collected.get("missing") == 0


def test_collectors_nest():
    with stats.collect() as outer:
        stats.count("x")
        with stats.collect() as inner:
            stats.count("x")
        stats.count("x")
    assert outer.get("x") == 3
    assert inner.get("x") == 1


def test_no_collector_is_noop():
    stats.count("ignored")  # must not raise


def test_table_cell_peak_tracking():
    with stats.collect() as collected:
        stats.table_cells_allocated(10)
        stats.table_cells_allocated(5)
        stats.table_cells_freed(12)
        stats.table_cells_allocated(4)
    assert collected.peak_table_cells == 15
    assert collected.live_table_cells == 7
    snapshot = collected.snapshot()
    assert snapshot["peak_table_cells"] == 15


def test_evaluation_populates_counters():
    engine = XPathEngine(running_example_document())
    with stats.collect() as collected:
        engine.evaluate(running_example_query(), algorithm="mincontext")
    assert collected.get("mincontext_contexts_evaluated") > 0
    assert collected.get("axis_single_calls") > 0
    assert collected.peak_table_cells > 0


# --- document generators -----------------------------------------------------

def test_balanced_tree_shape():
    doc = balanced_tree(depth=3, fanout=2)
    assert len(doc.elements()) == 7  # 1 + 2 + 4
    assert doc.root_element.name == "a"
    assert doc.root_element.children[0].name == "b"


def test_deep_chain_shape():
    doc = deep_chain(5)
    node = doc.root_element
    depth = 1
    while node.children and node.children[0].is_element:
        node = node.children[0]
        depth += 1
    assert depth == 5
    assert node.string_value == "100"


def test_wide_tree_shape():
    doc = wide_tree(10)
    assert len(doc.root_element.children) == 10
    assert doc.root_element.children[3].string_value == "3"


def test_numbered_line_values():
    doc = numbered_line(4)
    assert [c.string_value for c in doc.root_element.children] == ["1", "2", "3", "4"]


def test_book_catalog_structure():
    doc = book_catalog(books=3)
    engine = XPathEngine(doc)
    assert engine.evaluate("count(//book)") == 3.0
    assert engine.evaluate("count(//chapter)") == 9.0
    # Cross references point at the previous book.
    refs = engine.evaluate("id(//ref)")
    assert {n.xml_id for n in refs} == {"bk1", "bk2"}


def test_doubling_document_minimal():
    doc = doubling_document()
    assert len(doc.elements()) == 3


def test_random_document_determinism():
    a = random_document(random.Random(5), max_nodes=12)
    b = random_document(random.Random(5), max_nodes=12)
    from repro.xml.serializer import serialize

    assert serialize(a) == serialize(b)


def test_random_document_respects_bound():
    doc = random_document(random.Random(1), max_nodes=10)
    assert 1 <= len(doc.elements()) <= 10


# --- query generators -----------------------------------------------------------

def _analyzed(query):
    expr = normalize(parse_xpath(query))
    compute_relevance(expr)
    return expr


def test_core_family_is_core():
    for depth in (1, 3, 5):
        assert is_core_xpath(_analyzed(core_family(depth)))


def test_wadler_family_is_wadler_not_core():
    for levels in (1, 2, 3):
        expr = _analyzed(wadler_family(levels))
        assert is_extended_wadler(expr)
        assert not is_core_xpath(expr)


def test_position_heavy_family_outside_wadler():
    expr = _analyzed(position_heavy_query(2))
    assert not is_extended_wadler(expr)
    assert not is_core_xpath(expr)


def test_doubling_query_grows_linearly():
    q2 = doubling_query(2)
    q4 = doubling_query(4)
    assert q4.count("parent::a") == 4
    assert len(q4) > len(q2)


def test_doubling_query_explodes_naive_workload():
    """The naive engine's step-context count doubles per pair; the
    polynomial algorithms' stays flat — the EXP-X1 mechanism in miniature."""
    from repro import stats

    engine = XPathEngine(doubling_document())
    counts = []
    for pairs in (2, 4, 6):
        with stats.collect() as collected:
            engine.evaluate(doubling_query(pairs), algorithm="naive")
        counts.append(collected.get("naive_step_contexts"))
    assert counts[1] > 3 * counts[0]
    assert counts[2] > 3 * counts[1]
    with stats.collect() as collected:
        engine.evaluate(doubling_query(6), algorithm="mincontext")
    assert collected.get("mincontext_contexts_evaluated") < counts[0] * 4


def test_paper_queries_parse():
    _analyzed(running_example_query())
    _analyzed(example9_query())


def test_random_query_always_valid():
    rng = random.Random(99)
    for _ in range(100):
        _analyzed(random_query(rng))
