"""Black-box XPath semantics, asserted against explicit expected results
and run through every algorithm (parametrized).

Fixture document (ids shown):

    <root id="r">
      <sec id="s1" kind="intro">
        <p id="p1">10</p>
        <p id="p2">20</p>
        <note id="n1">p3</note>
      </sec>
      <sec id="s2">
        <p id="p3">30</p>
        <quote id="q1">10</quote>
      </sec>
      text, comment and PI nodes appear inside s2.
    </root>
"""

import math

import pytest

from repro.engine import XPathEngine
from repro.xml.parser import parse_document

ALGORITHMS = ("naive", "topdown", "mincontext", "optmincontext")

SOURCE = (
    '<root id="r">'
    '<sec id="s1" kind="intro">'
    '<p id="p1">10</p>'
    '<p id="p2">20</p>'
    '<note id="n1">p3</note>'
    "</sec>"
    '<sec id="s2">loose'
    "<!--remark-->"
    "<?marker data?>"
    '<p id="p3">30</p>'
    '<quote id="q1">10</quote>'
    "</sec>"
    "</root>"
)


@pytest.fixture(scope="module")
def engine():
    return XPathEngine(parse_document(SOURCE))


@pytest.fixture(params=ALGORITHMS)
def algorithm(request):
    return request.param


def ids(nodes):
    return [n.xml_id for n in nodes]


def q(engine, algorithm, query, **kw):
    return engine.evaluate(query, algorithm=algorithm, **kw)


# --- axes through real queries ------------------------------------------------

def test_child_axis(engine, algorithm):
    assert ids(q(engine, algorithm, "/root/sec")) == ["s1", "s2"]


def test_descendant_wildcard_selects_elements_only(engine, algorithm):
    got = q(engine, algorithm, "/descendant::*")
    assert ids(got) == ["r", "s1", "p1", "p2", "n1", "s2", "p3", "q1"]


def test_descendant_or_self_abbreviation(engine, algorithm):
    assert ids(q(engine, algorithm, "//p")) == ["p1", "p2", "p3"]


def test_parent_and_ancestor(engine, algorithm):
    assert ids(q(engine, algorithm, "//p[. = 30]/parent::sec")) == ["s2"]
    assert ids(q(engine, algorithm, "//quote/ancestor::*")) == ["r", "s2"]


def test_following_and_preceding(engine, algorithm):
    assert ids(q(engine, algorithm, "//note/following::*")) == ["s2", "p3", "q1"]
    assert ids(q(engine, algorithm, "//p[. = 30]/preceding::p")) == ["p1", "p2"]


def test_sibling_axes(engine, algorithm):
    assert ids(q(engine, algorithm, "//p[@id = 'p1']/following-sibling::*")) == ["p2", "n1"]
    assert ids(q(engine, algorithm, "//note/preceding-sibling::p")) == ["p1", "p2"]


def test_attribute_axis(engine, algorithm):
    got = q(engine, algorithm, "//sec/@kind")
    assert [a.value for a in got] == ["intro"]
    assert all(a.is_attribute for a in got)


def test_self_axis_with_test(engine, algorithm):
    assert ids(q(engine, algorithm, "//p/self::p")) == ["p1", "p2", "p3"]
    assert q(engine, algorithm, "//p/self::quote") == []


# --- node tests -------------------------------------------------------------------

def test_text_node_test(engine, algorithm):
    texts = q(engine, algorithm, "//p/text()")
    assert [t.value for t in texts] == ["10", "20", "30"]


def test_comment_and_pi_tests(engine, algorithm):
    comments = q(engine, algorithm, "//comment()")
    assert [c.value for c in comments] == ["remark"]
    pis = q(engine, algorithm, "//processing-instruction()")
    assert [p.name for p in pis] == ["marker"]
    assert q(engine, algorithm, "//processing-instruction('other')") == []
    hit = q(engine, algorithm, "//processing-instruction('marker')")
    assert len(hit) == 1


def test_node_test_matches_everything(engine, algorithm):
    children = q(engine, algorithm, "/root/sec[2]/child::node()")
    kinds = [type(n).__name__ for n in children]
    assert len(children) == 5  # text, comment, pi, p, quote


# --- positions -------------------------------------------------------------------

def test_numeric_predicate(engine, algorithm):
    assert ids(q(engine, algorithm, "//p[1]")) == ["p1", "p3"]
    assert ids(q(engine, algorithm, "//p[2]")) == ["p2"]


def test_position_last(engine, algorithm):
    assert ids(q(engine, algorithm, "/root/sec/*[position() = last()]")) == ["n1", "q1"]
    assert ids(q(engine, algorithm, "/root/sec/*[position() < 2]")) == ["p1", "p3"]


def test_position_on_reverse_axis_counts_backwards(engine, algorithm):
    # preceding-sibling positions count in reverse document order.
    assert ids(q(engine, algorithm, "//note/preceding-sibling::*[1]")) == ["p2"]
    assert ids(q(engine, algorithm, "//note/preceding-sibling::*[2]")) == ["p1"]


def test_sequential_predicates_rerank(engine, algorithm):
    # First predicate keeps p2/n1; second selects the first of those.
    assert ids(q(engine, algorithm, "/root/sec[1]/*[position() > 1][1]")) == ["p2"]


def test_position_in_filter_expression(engine, algorithm):
    assert ids(q(engine, algorithm, "(//p)[2]")) == ["p2"]
    assert ids(q(engine, algorithm, "(//p)[last()]")) == ["p3"]


# --- values and comparisons ----------------------------------------------------------

def test_value_comparison_with_number(engine, algorithm):
    assert ids(q(engine, algorithm, "//p[. = 20]")) == ["p2"]
    assert ids(q(engine, algorithm, "//p[. > 15]")) == ["p2", "p3"]


def test_attribute_string_comparison(engine, algorithm):
    assert ids(q(engine, algorithm, "//sec[@kind = 'intro']")) == ["s1"]
    assert ids(q(engine, algorithm, "//sec[not(@kind)]")) == ["s2"]


def test_nset_vs_nset_comparison(engine, algorithm):
    # p (10) = quote (10) share the string value "10".
    assert ids(q(engine, algorithm, "//sec[p = //quote]")) == ["s1"]


def test_arithmetic_in_predicates(engine, algorithm):
    assert ids(q(engine, algorithm, "//p[. mod 20 = 10]")) == ["p1", "p3"]
    assert ids(q(engine, algorithm, "//p[. div 10 >= 2]")) == ["p2", "p3"]


def test_scalar_results(engine, algorithm):
    assert q(engine, algorithm, "count(//p)") == 3.0
    assert q(engine, algorithm, "sum(//p)") == 60.0
    assert q(engine, algorithm, "string(//p[2])") == "20"
    assert q(engine, algorithm, "concat(string(count(//sec)), '!')") == "2!"
    assert q(engine, algorithm, "boolean(//quote)") is True
    assert q(engine, algorithm, "boolean(//missing)") is False
    assert q(engine, algorithm, "1 + 2 * 3") == 7.0


def test_string_value_of_element_with_mixed_content(engine, algorithm):
    assert q(engine, algorithm, "string(/root/sec[2])") == "loose3010"


# --- unions -----------------------------------------------------------------------

def test_union_merges_and_orders(engine, algorithm):
    got = q(engine, algorithm, "//quote | //note | //p[1]")
    assert ids(got) == ["p1", "n1", "p3", "q1"]


def test_union_inside_predicate(engine, algorithm):
    assert ids(q(engine, algorithm, "//sec[quote | note]")) == ["s1", "s2"]


# --- id() -----------------------------------------------------------------------

def test_id_function_with_literal(engine, algorithm):
    assert ids(q(engine, algorithm, "id('p1 q1')")) == ["p1", "q1"]


def test_id_of_node_set(engine, algorithm):
    # note's text is "p3": id(//note) dereferences it.
    assert ids(q(engine, algorithm, "id(//note)")) == ["p3"]


def test_id_with_tail_path(engine, algorithm):
    assert ids(q(engine, algorithm, "id('s2')/p")) == ["p3"]


# --- nested/absolute paths in predicates -------------------------------------------

def test_absolute_path_in_predicate(engine, algorithm):
    assert ids(q(engine, algorithm, "//p[/root/sec]")) == ["p1", "p2", "p3"]
    assert q(engine, algorithm, "//p[/root/missing]") == []


def test_relative_path_predicates(engine, algorithm):
    assert ids(q(engine, algorithm, "//sec[note]")) == ["s1"]
    assert ids(q(engine, algorithm, "//*[quote][p]")) == ["s2"]


def test_deeply_nested_predicates(engine, algorithm):
    assert ids(q(engine, algorithm, "//sec[p[. = 30]]")) == ["s2"]
    assert ids(q(engine, algorithm, "/root[sec[p[. = 10]]]")) == ["r"]


# --- context handling ---------------------------------------------------------------

def test_relative_query_from_context_node(engine, algorithm):
    s2 = engine.document.element_by_id("s2")
    assert ids(q(engine, algorithm, "p", context_node=s2)) == ["p3"]
    assert ids(q(engine, algorithm, "..", context_node=s2)) == ["r"]


def test_outer_position_visible_to_scalar_query(engine, algorithm):
    s2 = engine.document.element_by_id("s2")
    value = q(
        engine, algorithm, "position() + last()", context_node=s2,
        context_position=2, context_size=5,
    )
    assert value == 7.0


def test_dot_string_value(engine, algorithm):
    p2 = engine.document.element_by_id("p2")
    assert q(engine, algorithm, "string(.)", context_node=p2) == "20"
    assert q(engine, algorithm, "number(.)", context_node=p2) == 20.0


# --- empty results and edge cases --------------------------------------------------

def test_empty_axis_results(engine, algorithm):
    assert q(engine, algorithm, "/root/parent::*") == []
    assert q(engine, algorithm, "//missing") == []
    assert q(engine, algorithm, "count(//missing)") == 0.0


def test_nan_arithmetic_result(engine, algorithm):
    value = q(engine, algorithm, "number(//note)")
    assert math.isnan(value)


def test_root_only_query(engine, algorithm):
    (root,) = q(engine, algorithm, "/")
    assert root.is_document
