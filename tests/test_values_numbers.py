"""Tests for XPath number semantics (parsing, printing, rounding, mod/div)."""

import math

import pytest

from repro.values.numbers import (
    number_to_string,
    to_number,
    xpath_ceiling,
    xpath_divide,
    xpath_floor,
    xpath_modulo,
    xpath_round,
)


# --- to_number: the XPath Number grammar --------------------------------

@pytest.mark.parametrize(
    "text,expected",
    [
        ("1", 1.0),
        ("12.5", 12.5),
        (".5", 0.5),
        ("5.", 5.0),
        ("-3", -3.0),
        ("-0.25", -0.25),
        ("  7  ", 7.0),
        ("\t\n42\r", 42.0),
    ],
)
def test_to_number_valid(text, expected):
    assert to_number(text) == expected


@pytest.mark.parametrize(
    "text",
    ["", " ", "+1", "1e3", "0x10", "Infinity", "NaN", "1 2", "--1", "1.2.3", "abc"],
)
def test_to_number_invalid_is_nan(text):
    assert math.isnan(to_number(text))


# --- number_to_string ----------------------------------------------------

@pytest.mark.parametrize(
    "value,expected",
    [
        (4.0, "4"),
        (-4.0, "-4"),
        (0.0, "0"),
        (-0.0, "0"),
        (0.5, "0.5"),
        (-2.25, "-2.25"),
        (float("nan"), "NaN"),
        (float("inf"), "Infinity"),
        (float("-inf"), "-Infinity"),
        (1e16, "10000000000000000"),
    ],
)
def test_number_to_string(value, expected):
    assert number_to_string(value) == expected


def test_number_to_string_small_magnitude_no_exponent():
    text = number_to_string(1e-7)
    assert "e" not in text and "E" not in text
    assert float(text) == pytest.approx(1e-7)


def test_string_round_trip_for_integers():
    for value in (-5.0, 0.0, 3.0, 123456.0):
        assert to_number(number_to_string(value)) == value


# --- floor / ceiling / round ---------------------------------------------

def test_floor_ceiling_basics():
    assert xpath_floor(2.7) == 2.0
    assert xpath_floor(-2.1) == -3.0
    assert xpath_ceiling(2.1) == 3.0
    assert xpath_ceiling(-2.7) == -2.0


def test_floor_ceiling_pass_through_specials():
    assert math.isnan(xpath_floor(float("nan")))
    assert xpath_ceiling(float("inf")) == float("inf")


def test_round_half_toward_positive_infinity():
    assert xpath_round(0.5) == 1.0
    assert xpath_round(1.5) == 2.0
    assert xpath_round(-1.5) == -1.0
    assert xpath_round(2.4) == 2.0
    assert xpath_round(-2.6) == -3.0


def test_round_negative_half_is_negative_zero():
    result = xpath_round(-0.5)
    assert result == 0.0
    assert math.copysign(1.0, result) == -1.0


def test_round_passes_specials():
    assert math.isnan(xpath_round(float("nan")))
    assert xpath_round(float("-inf")) == float("-inf")


# --- div / mod ------------------------------------------------------------

def test_divide_by_zero_gives_infinities():
    assert xpath_divide(1.0, 0.0) == float("inf")
    assert xpath_divide(-1.0, 0.0) == float("-inf")
    assert math.isnan(xpath_divide(0.0, 0.0))


def test_divide_regular():
    assert xpath_divide(7.0, 2.0) == 3.5


def test_mod_sign_follows_dividend():
    assert xpath_modulo(5.0, 2.0) == 1.0
    assert xpath_modulo(5.0, -2.0) == 1.0
    assert xpath_modulo(-5.0, 2.0) == -1.0
    assert xpath_modulo(-5.0, -2.0) == -1.0


def test_mod_fractional():
    assert xpath_modulo(5.5, 2.0) == pytest.approx(1.5)


def test_mod_edge_cases():
    assert math.isnan(xpath_modulo(1.0, 0.0))
    assert math.isnan(xpath_modulo(float("inf"), 2.0))
    assert xpath_modulo(5.0, float("inf")) == 5.0
