"""Shared fixtures: paper documents, engines, and cross-algorithm helpers."""

from __future__ import annotations

import pytest

from repro.engine import XPathEngine
from repro.workloads.documents import (
    book_catalog,
    doubling_document,
    running_example_document,
)

#: Every full-XPath algorithm (corexpath only handles its fragment).
ALL_ALGORITHMS = ("naive", "topdown", "bottomup", "mincontext", "optmincontext")

#: The polynomial algorithms (cheap enough for bigger fixtures).
POLY_ALGORITHMS = ("topdown", "mincontext", "optmincontext")


@pytest.fixture(scope="session")
def running_doc():
    """The paper's Figure 2 document (element-only dom + data text)."""
    return running_example_document()


@pytest.fixture()
def running_engine(running_doc):
    return XPathEngine(running_doc)


@pytest.fixture(scope="session")
def catalog_doc():
    return book_catalog(books=6)


@pytest.fixture()
def catalog_engine(catalog_doc):
    return XPathEngine(catalog_doc)


@pytest.fixture(scope="session")
def doubling_doc():
    return doubling_document()


def ids(nodes) -> list[str]:
    """Element ids of a node list, in the given order."""
    return [node.xml_id for node in nodes]


def evaluate_everywhere(engine: XPathEngine, query: str, algorithms=ALL_ALGORITHMS):
    """Evaluate with every algorithm; return {algorithm: result}."""
    return {name: engine.evaluate(query, algorithm=name) for name in algorithms}


def assert_all_agree(engine: XPathEngine, query: str, algorithms=ALL_ALGORITHMS):
    """Differential oracle: all algorithms must return the same value."""
    outcomes = evaluate_everywhere(engine, query, algorithms)
    baseline_name = algorithms[0]
    baseline = outcomes[baseline_name]
    for name, value in outcomes.items():
        assert value == baseline, (
            f"{name} disagrees with {baseline_name} on {query!r}: "
            f"{value!r} != {baseline!r}"
        )
    return baseline
