"""Tests for bottom-up path evaluation (Section 4 / Section 6 pseudo-code),
including regressions for the two documented soundness fixes."""

import pytest

from repro.core.bottomup_paths import eval_bottomup_path, propagate_path_backwards
from repro.core.context import Context
from repro.core.mincontext import MinContextEvaluator
from repro.engine import XPathEngine
from repro.xml.parser import parse_document
from repro.xpath.fragments import find_bottomup_paths
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance


def analyzed(query):
    expr = normalize(parse_xpath(query))
    compute_relevance(expr)
    return expr


def propagate(doc, path_query, targets):
    path = analyzed(path_query)
    mc = MinContextEvaluator(doc)
    return propagate_path_backwards(mc, path, targets)


def ids(nodes):
    return sorted(n.xml_id for n in nodes if n.xml_id)


# --- plain propagation ---------------------------------------------------------

@pytest.fixture()
def doc():
    return parse_document(
        '<r id="r"><a id="a1"><b id="b1">v</b><b id="b2">w</b></a>'
        '<a id="a2"><b id="b3">v</b></a><c id="c1"/></r>'
    )


def test_backward_child_step(doc):
    targets = {doc.element_by_id("b1"), doc.element_by_id("b3")}
    got = propagate(doc, "child::b", targets)
    assert ids(got) == ["a1", "a2"]


def test_backward_two_steps(doc):
    targets = set(doc.nodes)
    got = propagate(doc, "child::a/child::b", targets)
    assert ids(got) == ["r"]


def test_backward_with_node_test_filter(doc):
    # Only c-children: b targets never match the test.
    got = propagate(doc, "child::c", {doc.element_by_id("b1"), doc.element_by_id("c1")})
    assert ids(got) == ["r"]


def test_backward_empty_short_circuits(doc):
    assert propagate(doc, "child::b/child::b", set()) == set()


def test_absolute_path_requires_root_membership(doc):
    """Soundness fix #2: the printed pseudo-code returns dom whenever the
    propagated set is nonempty; the root must actually be in it."""
    # /child::b never succeeds (root's only element child is r).
    got = propagate(doc, "/child::b", set(doc.nodes))
    assert got == set()
    # /child::r/child::a does.
    got = propagate(doc, "/child::r/child::a", set(doc.nodes))
    assert got == set(doc.nodes)


def test_absolute_bare_root(doc):
    got = propagate(doc, "/", {doc.root})
    assert got == set(doc.nodes)
    got = propagate(doc, "/", {doc.element_by_id("a1")})
    assert got == set()


# --- the position-ranking soundness fix -------------------------------------------

def test_positions_ranked_over_all_candidates_not_propagated_subset():
    """Soundness fix #1. For //a[child::b[1] = 'v'] the *first* b child
    must equal 'v'; ranking within the propagated subset (nodes whose
    string value is 'v') would wrongly accept a2 (whose first b is 'w'
    but second is 'v')."""
    doc = parse_document(
        '<r id="r">'
        '<a id="a1"><b id="b1">v</b><b id="b2">w</b></a>'
        '<a id="a2"><b id="b3">w</b><b id="b4">v</b></a>'
        "</r>"
    )
    engine = XPathEngine(doc)
    for algorithm in ("naive", "topdown", "mincontext", "optmincontext"):
        got = engine.evaluate("//a[child::b[1] = 'v']", algorithm=algorithm)
        assert [n.xml_id for n in got] == ["a1"], algorithm


def test_position_predicates_in_bottomup_path_agree_with_forward():
    doc = parse_document(
        "<r>"
        '<s id="s1"><t id="t1">5</t><t id="t2">9</t><t id="t3">5</t></s>'
        '<s id="s2"><t id="t4">9</t></s>'
        "</r>"
    )
    engine = XPathEngine(doc)
    query = "//s[t[position() != last()] = 9]"
    expected = engine.evaluate(query, algorithm="topdown")
    got = engine.evaluate(query, algorithm="optmincontext")
    assert got == expected
    assert [n.xml_id for n in got] == ["s1"]


# --- eval_bottomup_path table construction -------------------------------------------

def test_boolean_path_table(doc):
    ast = analyzed("//r[boolean(child::a)]")
    mc = MinContextEvaluator(doc)
    (node,) = find_bottomup_paths(ast)
    eval_bottomup_path(mc, node)
    assert node.uid in mc.precomputed
    rows = mc.tables[node.uid]
    true_ids = {k[0].xml_id for k, v in rows.items() if v and k[0].is_element}
    assert true_ids == {"r"}
    # Idempotent: re-running does not recompute (precomputed check).
    eval_bottomup_path(mc, node)


def test_comparison_with_flipped_sides(doc):
    engine = XPathEngine(doc)
    left = engine.evaluate("//a['v' = child::b]")
    right = engine.evaluate("//a[child::b = 'v']")
    assert left == right
    assert ids(left) == ["a1", "a2"]


def test_relational_comparison_table():
    doc = parse_document('<r><n id="1">5</n><n id="2">15</n><n id="3">25</n></r>')
    engine = XPathEngine(doc)
    got = engine.evaluate("//r[n > 20]", algorithm="optmincontext")
    assert len(got) == 1
    got = engine.evaluate("//r[n > 30]", algorithm="optmincontext")
    assert got == []


def test_boolean_scalar_comparison():
    # π RelOp s with s of type bool: treated like boolean(π) RelOp s.
    doc = parse_document('<r><a id="1"><b/></a><a id="2"/></r>')
    engine = XPathEngine(doc)
    got = engine.evaluate("//a[b = true()]", algorithm="optmincontext")
    assert [n.xml_id for n in got] == ["1"]
    expected = engine.evaluate("//a[b = true()]", algorithm="topdown")
    assert got == expected
    got = engine.evaluate("//a[b != true()]", algorithm="optmincontext")
    assert [n.xml_id for n in got] == ["2"]


def test_nset_scalar_with_nset_constant():
    # π RelOp s where s is a context-free *node-set* (id over a literal):
    # the Section 6 pseudo-code's "s is of type nset" branch.
    doc = parse_document(
        '<r><k id="k1">10</k><a id="a1"><b>10</b></a><a id="a2"><b>2</b></a></r>'
    )
    engine = XPathEngine(doc)
    query = "//a[b = id('k1')]"
    expected = engine.evaluate(query, algorithm="topdown")
    got = engine.evaluate(query, algorithm="optmincontext")
    assert got == expected
    assert [n.xml_id for n in got] == ["a1"]


def test_id_axis_in_backward_propagation():
    doc = parse_document(
        '<r id="r"><p id="p1">q1</p><p id="p2">nothing</p><q id="q1">100</q></r>'
    )
    engine = XPathEngine(doc)
    # p1 id-references q1 whose value is 100.
    query = "//p[boolean(id(.)[. = 100])]"
    expected = engine.evaluate(query, algorithm="topdown")
    got = engine.evaluate(query, algorithm="optmincontext")
    assert got == expected
    assert [n.xml_id for n in got] == ["p1"]


def test_nested_bottomup_paths_share_tables():
    doc = parse_document(
        '<r><a id="a1"><b id="b1"><c>1</c></b></a><a id="a2"><b id="b2"/></a></r>'
    )
    ast = analyzed("//a[b[c = 1]]")
    mc = MinContextEvaluator(doc)
    found = find_bottomup_paths(ast)
    assert len(found) == 2
    for node in found:
        eval_bottomup_path(mc, node)
    engine = XPathEngine(doc)
    got = engine.evaluate("//a[b[c = 1]]", algorithm="optmincontext")
    assert [n.xml_id for n in got] == ["a1"]
