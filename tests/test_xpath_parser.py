"""Tests for the XPath 1.0 grammar: structure, precedence, abbreviations."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    Negate,
    NumberLiteral,
    Path,
    StringLiteral,
    Union,
    VariableRef,
)
from repro.xpath.parser import parse_xpath


def steps_of(expr):
    assert isinstance(expr, Path)
    return [(s.axis, s.node_test.kind, s.node_test.name) for s in expr.steps]


def test_relative_path():
    expr = parse_xpath("child::a/descendant::b")
    assert isinstance(expr, Path)
    assert not expr.absolute
    assert steps_of(expr) == [("child", "name", "a"), ("descendant", "name", "b")]


def test_absolute_path_and_bare_slash():
    assert parse_xpath("/child::a").absolute
    root_only = parse_xpath("/")
    assert root_only.absolute and root_only.steps == []


def test_abbreviations():
    expr = parse_xpath("//b")
    assert steps_of(expr) == [
        ("descendant-or-self", "node", None),
        ("child", "name", "b"),
    ]
    assert steps_of(parse_xpath("."))[0] == ("self", "node", None)
    assert steps_of(parse_xpath(".."))[0] == ("parent", "node", None)
    assert steps_of(parse_xpath("@x"))[0] == ("attribute", "name", "x")
    assert steps_of(parse_xpath("a//b")) == [
        ("child", "name", "a"),
        ("descendant-or-self", "node", None),
        ("child", "name", "b"),
    ]


def test_default_axis_is_child():
    assert steps_of(parse_xpath("a"))[0] == ("child", "name", "a")


def test_node_tests():
    assert steps_of(parse_xpath("child::*"))[0] == ("child", "wildcard", None)
    assert steps_of(parse_xpath("child::node()"))[0] == ("child", "node", None)
    assert steps_of(parse_xpath("child::text()"))[0] == ("child", "text", None)
    assert steps_of(parse_xpath("child::comment()"))[0] == ("child", "comment", None)
    assert steps_of(parse_xpath("child::processing-instruction()"))[0] == ("child", "pi", None)
    assert steps_of(parse_xpath("child::processing-instruction('t')"))[0] == (
        "child",
        "pi",
        "t",
    )


def test_predicates_attach_to_steps():
    expr = parse_xpath("child::a[1][position() = 2]")
    (step,) = expr.steps
    assert len(step.predicates) == 2
    assert isinstance(step.predicates[0], NumberLiteral)
    assert isinstance(step.predicates[1], BinaryOp)


def test_precedence_or_and():
    expr = parse_xpath("1 or 2 and 3")
    assert isinstance(expr, BinaryOp) and expr.op == "or"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"


def test_precedence_comparison_vs_arithmetic():
    expr = parse_xpath("1 + 2 = 3 * 4")
    assert expr.op == "="
    assert expr.left.op == "+"
    assert expr.right.op == "*"


def test_precedence_equality_vs_relational():
    expr = parse_xpath("1 < 2 = 3 > 4")
    # '=' binds loosest: (1<2) = (3>4).
    assert expr.op == "="
    assert expr.left.op == "<"
    assert expr.right.op == ">"


def test_left_associativity():
    expr = parse_xpath("10 - 4 - 3")
    assert expr.op == "-"
    assert expr.left.op == "-"
    assert isinstance(expr.right, NumberLiteral)


def test_unary_minus():
    expr = parse_xpath("-5")
    assert isinstance(expr, Negate)
    nested = parse_xpath("--5")
    assert isinstance(nested.operand, Negate)
    # Unary binds tighter than binary minus: 1 - -2.
    mixed = parse_xpath("1 - -2")
    assert mixed.op == "-"
    assert isinstance(mixed.right, Negate)


def test_union():
    expr = parse_xpath("a | b | c")
    assert isinstance(expr, Union)
    assert isinstance(expr.left, Union)


def test_function_calls():
    expr = parse_xpath("concat('a', 'b', 'c')")
    assert isinstance(expr, FunctionCall)
    assert expr.name == "concat"
    assert len(expr.args) == 3
    empty = parse_xpath("last()")
    assert empty.args == []


def test_variable_reference():
    expr = parse_xpath("$x + 1")
    assert isinstance(expr.left, VariableRef)
    assert expr.left.name == "x"


def test_literals():
    assert isinstance(parse_xpath("'s'"), StringLiteral)
    assert parse_xpath("0.5").value == 0.5


def test_filter_expression_with_predicate():
    expr = parse_xpath("(a | b)[1]")
    assert isinstance(expr, Path)
    assert isinstance(expr.primary, Union)
    assert len(expr.primary_predicates) == 1
    assert expr.steps == []


def test_filter_expression_with_tail_path():
    expr = parse_xpath("id('x')/child::a")
    assert isinstance(expr, Path)
    assert isinstance(expr.primary, FunctionCall)
    assert steps_of(expr) == [("child", "name", "a")]


def test_filter_expression_with_double_slash_tail():
    expr = parse_xpath("id('x')//a")
    assert steps_of(expr) == [
        ("descendant-or-self", "node", None),
        ("child", "name", "a"),
    ]


def test_parenthesized_expression_unwraps():
    expr = parse_xpath("(1 + 2)")
    assert isinstance(expr, BinaryOp)


def test_paper_running_example_parses():
    expr = parse_xpath(
        "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"
    )
    assert isinstance(expr, Path)
    assert expr.absolute
    assert len(expr.steps) == 2
    predicate = expr.steps[1].predicates[0]
    assert predicate.op == "or"


def test_nested_predicates():
    expr = parse_xpath("a[b[c]]")
    inner = expr.steps[0].predicates[0]
    assert isinstance(inner, Path)
    assert isinstance(inner.steps[0].predicates[0], Path)


def test_namespace_axis_rejected():
    with pytest.raises(XPathSyntaxError):
        parse_xpath("namespace::x")


def test_unknown_axis_rejected():
    with pytest.raises(XPathSyntaxError):
        parse_xpath("sideways::x")


@pytest.mark.parametrize(
    "bad",
    ["", "child::", "a[", "a]", "f(", "1 +", "/..../", "a b", "()", "a[]"],
)
def test_syntax_errors(bad):
    with pytest.raises(XPathSyntaxError):
        parse_xpath(bad)


def test_trailing_garbage_rejected():
    with pytest.raises(XPathSyntaxError):
        parse_xpath("a b c")
