"""Core library functions exercised end-to-end through queries (the unit
tests in test_functions.py call implementations directly; these go
through parsing, normalization — including the default-to-context-node
expansion — and all evaluators)."""

import math

import pytest

from repro.engine import XPathEngine
from repro.xml.parser import parse_document

ALGORITHMS = ("naive", "topdown", "mincontext", "optmincontext")


@pytest.fixture(scope="module")
def engine():
    return XPathEngine(parse_document(
        '<doc xml:lang="en">'
        '<item id="i1" tag="alpha">  10  </item>'
        '<item id="i2" tag="beta">twenty</item>'
        '<section id="s1" xml:lang="de"><item id="i3">30</item></section>'
        "</doc>"
    ))


def q(engine, query, **kw):
    results = [engine.evaluate(query, algorithm=a, **kw) for a in ALGORITHMS]
    first = results[0]
    for value in results[1:]:
        if isinstance(first, float) and math.isnan(first):
            assert isinstance(value, float) and math.isnan(value)
        else:
            assert value == first
    return first


# --- default-to-context expansion -------------------------------------------------

def test_string_defaults_to_context_node(engine):
    item = engine.document.element_by_id("i2")
    assert q(engine, "string()", context_node=item) == "twenty"


def test_number_defaults_to_context_node(engine):
    item = engine.document.element_by_id("i3")
    assert q(engine, "number()", context_node=item) == 30.0


def test_name_functions_default(engine):
    section = engine.document.element_by_id("s1")
    assert q(engine, "name()", context_node=section) == "section"
    assert q(engine, "local-name()", context_node=section) == "section"
    attr = section.attributes[0]
    assert q(engine, "name()", context_node=attr) == "id"


def test_string_length_defaults(engine):
    item = engine.document.element_by_id("i2")
    assert q(engine, "string-length()", context_node=item) == 6.0


def test_normalize_space_defaults(engine):
    item = engine.document.element_by_id("i1")
    assert q(engine, "normalize-space()", context_node=item) == "10"


def test_defaults_inside_predicates(engine):
    got = q(engine, "//item[string-length(normalize-space()) = 2]")
    assert [n.xml_id for n in got] == ["i1", "i3"]
    got = q(engine, "//*[name() = 'section']")
    assert [n.xml_id for n in got] == ["s1"]


# --- lang() through queries -----------------------------------------------------------

def test_lang_inherits_and_overrides(engine):
    got = q(engine, "//item[lang('en')]")
    assert [n.xml_id for n in got] == ["i1", "i2"]
    got = q(engine, "//item[lang('de')]")
    assert [n.xml_id for n in got] == ["i3"]
    assert q(engine, "boolean(//section[lang('en')])") is False


# --- string machinery in predicates -----------------------------------------------------

def test_concat_translate_substring_pipeline(engine):
    got = q(engine, "//item[starts-with(@tag, 'a')]")
    assert [n.xml_id for n in got] == ["i1"]
    got = q(engine, "//item[contains(@tag, 'et')]")
    assert [n.xml_id for n in got] == ["i2"]
    assert q(engine, "translate(string(//item[2]/@tag), 'abt', 'ABT')") == "BeTA"
    assert q(engine, "substring-after(string(//item/@tag), 'al')") == "pha"
    assert q(engine, "concat(name(/doc), '-', string(count(//item)))") == "doc-3"


def test_numeric_functions_over_document_values(engine):
    assert q(engine, "floor(sum(//item[. > 5]))") == 40.0
    assert q(engine, "ceiling(number(//item[1]) div 3)") == 4.0
    assert q(engine, "round(number(//item[1]) div 3)") == 3.0


def test_nested_conversions(engine):
    # number(string(boolean(...))) — conversion chain through all types.
    assert q(engine, "string(boolean(//item))") == "true"
    assert math.isnan(q(engine, "number(string(boolean(//item)))"))
    assert q(engine, "number(boolean(//item))") == 1.0


def test_count_and_sum_in_arithmetic(engine):
    assert q(engine, "count(//item) * 2 - 1") == 5.0
    value = q(engine, "sum(//item)")
    assert math.isnan(value)  # "twenty" is NaN, poisoning the IEEE sum
    assert q(engine, "sum(//item[number() >= 0])") == 40.0  # numeric-only


def test_id_function_composes_with_everything(engine):
    assert q(engine, "string(id('i3'))") == "30"
    assert q(engine, "count(id('i1 i2 i3 nope'))") == 3.0
    got = q(engine, "id('s1')/item")
    assert [n.xml_id for n in got] == ["i3"]


def test_boolean_functions_in_filters(engine):
    got = q(engine, "//item[not(@tag)]")
    assert [n.xml_id for n in got] == ["i3"]
    got = q(engine, "//item[true()]")
    assert len(got) == 3
    assert q(engine, "//item[false()]") == []
