"""Tests for Relev(N) — Section 3.1 rules, including the paper's Example 3."""

import pytest

from repro.errors import XPathTypeError
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance, project_context


def analyzed(source):
    expr = normalize(parse_xpath(source))
    compute_relevance(expr)
    return expr


def relev(source):
    return set(analyzed(source).relev)


# --- base cases -----------------------------------------------------------

def test_constants_have_empty_relevance():
    assert relev("1") == set()
    assert relev("'s'") == set()
    assert relev("true()") == set()
    assert relev("false()") == set()


def test_position_and_last():
    assert relev("position()") == {"cp"}
    assert relev("last()") == {"cs"}


def test_location_paths_are_cn():
    assert relev("a/b") == {"cn"}
    assert relev("/a") == {"cn"}  # paper keeps cn even for absolute paths
    assert relev("a | b") == {"cn"}


def test_context_defaulting_functions_are_cn():
    # string() normalizes to string(self::node()) — cn via the path.
    assert relev("string()") == {"cn"}
    assert relev("number()") == {"cn"}
    assert relev("name()") == {"cn"}


def test_lang_is_cn_dependent():
    assert relev("lang('en')") == {"cn"}
    # even with a context-free argument — and unions with the argument's set
    assert relev("lang(string(position()))") == {"cn", "cp"}


# --- compound expressions -----------------------------------------------------

def test_union_of_children():
    assert relev("position() > last()") == {"cp", "cs"}
    assert relev("position() + 1") == {"cp"}
    assert relev("count(a) = position()") == {"cn", "cp"}
    assert relev("concat('a', 'b')") == set()


def test_example3_values(running_doc):
    """Example 3: the Relev sets of every node of Figure 3's parse tree."""
    expr = analyzed(
        "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"
    )
    # N1 (the whole path) and N2 (the second step): {'cn'}.
    assert set(expr.relev) == {"cn"}
    step2 = expr.steps[1]
    assert set(step2.relev) == {"cn"}
    # N3 = the or-predicate: {'cn','cp','cs'}.
    predicate = step2.predicates[0]
    assert set(predicate.relev) == {"cn", "cp", "cs"}
    # N4 = position() > last()*0.5: {'cp','cs'}... plus nothing else.
    n4 = predicate.left
    assert set(n4.relev) == {"cp", "cs"}
    # N5 = self::* = 100: {'cn'}.
    n5 = predicate.right
    assert set(n5.relev) == {"cn"}
    # N6 position(): {'cp'}; N7 last()*0.5: {'cs'}; N8 self::*: {'cn'};
    # N9 100: ∅.
    assert set(n4.left.relev) == {"cp"}
    assert set(n4.right.relev) == {"cs"}
    assert set(n5.left.relev) == {"cn"}
    assert set(n5.right.relev) == set()


def test_predicates_do_not_leak_into_path_relevance():
    # The predicate uses position/last; the path is still {'cn'}.
    assert relev("a[position() = last()]") == {"cn"}


def test_filter_primary_relevance_propagates():
    # id(string(position()))/a genuinely depends on cp.
    assert relev("id(string(position()))/child::a") == {"cn", "cp"}


def test_raw_tree_rejected():
    expr = parse_xpath("$x")
    with pytest.raises(XPathTypeError):
        compute_relevance(expr)


# --- projection --------------------------------------------------------------

def test_project_context():
    assert project_context(frozenset(), "n", 1, 2) == ()
    assert project_context(frozenset({"cn"}), "n", 1, 2) == ("n",)
    assert project_context(frozenset({"cp"}), "n", 1, 2) == (1,)
    assert project_context(frozenset({"cn", "cp", "cs"}), "n", 1, 2) == ("n", 1, 2)
    # Order is canonical (cn, cp, cs) regardless of set iteration order.
    assert project_context(frozenset({"cs", "cn"}), "n", 1, 2) == ("n", 2)
