"""Lazy column documents ≡ eager trees — the PR 8 property suite.

``decode_snapshot(blob, lazy=True)`` returns a
:class:`~repro.xml.columns.ColumnDocument` that holds only the snapshot
columns and materializes boxed ``Node`` objects per pre, on demand,
memoized. The contract under test: **byte-identical results in every
configuration** (all algorithms, share on/off, every scheduler backend,
every kernel mode), **exact accounting** (``lazy_documents`` /
``nodes_materialized`` move by exactly what happened, each pre is boxed
at most once), and **output-sensitivity** (a selective Core XPath query
materializes O(output) nodes, not O(|D|)).

The suite rides the differential-fuzz corpus generators with fixed
seeds, so every case is reproducible.
"""

import random

from repro import stats
from repro.axes.axes import axis_test_pres, kernel_mode_forced
from repro.engine import XPathEngine
from repro.service import QueryService, ShardedExecutor
from repro.workloads.documents import book_catalog, running_example_document, wide_tree
from repro.workloads.queries import random_core_query, random_full_query
from repro.xml.columns import ColumnDocument, LazyNode
from repro.xml.document import Node
from repro.xml.index import node_index
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.snapshot import decode_snapshot, encode_snapshot
from repro.xml.statistics import document_statistics
from repro.xpath.ast import NodeTest

SEED = 20030612
ALGORITHMS = ("naive", "bottomup", "topdown", "mincontext", "optmincontext", "corexpath")


def _fixed_documents():
    return [
        running_example_document(),
        wide_tree(width=6),
        parse_document(
            '<a id="1">x<b id="2"><a id="3">100</a>y</b>'
            '<c id="4" kind="k"><b id="5">1</b><b id="6">2</b><b id="7">2</b></c>'
            '<!--comment--><d id="8"/></a>'
        ),
    ]


def _lazy_twin(document):
    """A :class:`ColumnDocument` with the same pre-plane as ``document``."""
    twin = decode_snapshot(encode_snapshot(document), lazy=True)
    assert isinstance(twin, ColumnDocument)
    return twin


def _canon(value):
    """Document-independent canonical form: nodes become their pre
    numbers (twins have different Node objects, identical numbering)."""
    if isinstance(value, list):
        return [_canon(item) for item in value]
    if isinstance(value, Node):
        return ("node", value.pre)
    return value


# ----------------------------------------------------------------------
# Decode builds nothing; materialization is exact
# ----------------------------------------------------------------------


def test_lazy_decode_builds_no_nodes():
    blob = encode_snapshot(running_example_document())
    before = stats.axis_kernel_stats.snapshot()
    document = decode_snapshot(blob, lazy=True)
    after = stats.axis_kernel_stats.snapshot()
    assert after["lazy_documents"] - before["lazy_documents"] == 1
    assert after["nodes_materialized"] - before["nodes_materialized"] == 0
    assert document.materialized_count() == 0
    # The first touch materializes exactly one node, memoized.
    root = document.root
    assert root.pre == 0
    assert document.materialized_count() == 1
    assert document.nodes[0] is root
    assert stats.axis_kernel_stats.snapshot()["nodes_materialized"] == (
        before["nodes_materialized"] + 1
    )


def test_materialization_counter_is_exact_and_memoized():
    document = _lazy_twin(_fixed_documents()[2])
    total = len(document)
    before = stats.axis_kernel_stats.snapshot()
    first_pass = [document.nodes[pre] for pre in range(total)]
    mid = stats.axis_kernel_stats.snapshot()
    second_pass = [document.nodes[pre] for pre in range(total)]
    after = stats.axis_kernel_stats.snapshot()
    # Every pre boxed exactly once; re-iteration adds zero.
    assert mid["nodes_materialized"] - before["nodes_materialized"] == total
    assert after["nodes_materialized"] == mid["nodes_materialized"]
    assert document.materialized_count() == total
    assert all(a is b for a, b in zip(first_pass, second_pass))
    assert all(isinstance(node, LazyNode) for node in first_pass)
    assert [node.pre for node in first_pass] == list(range(total))


def test_selective_query_materializes_output_only():
    """The tentpole's O(output) claim on a genuinely selective query:
    a Core XPath sweep under auto dispatch boxes the results and the
    context node, nothing else — counter-verified."""
    document = _lazy_twin(book_catalog(books=24, chapters_per_book=4))
    before = stats.axis_kernel_stats.snapshot()
    engine = XPathEngine(document)
    with kernel_mode_forced("auto"):
        result = engine.evaluate(engine.compile("/descendant::price"), algorithm="corexpath")
    after = stats.axis_kernel_stats.snapshot()
    assert 0 < len(result) < 0.10 * len(document)
    materialized = after["nodes_materialized"] - before["nodes_materialized"]
    assert materialized == document.materialized_count()
    # O(output): the result nodes plus the query's context node.
    assert materialized <= len(result) + 1


# ----------------------------------------------------------------------
# lazy ≡ eager over the fuzz corpus — algorithms × kernel modes
# ----------------------------------------------------------------------


def test_lazy_matches_eager_on_core_fuzz_corpus():
    """Every Core XPath fuzz case, all six algorithms: the lazy twin
    returns the same values (by pre) as the eager tree."""
    rng = random.Random(SEED)
    cases = 0
    for document in _fixed_documents():
        eager_engine = XPathEngine(document)
        lazy_engine = XPathEngine(_lazy_twin(document))
        for _ in range(12):
            query = random_core_query(rng)
            for algorithm in ALGORITHMS:
                expected = _canon(eager_engine.evaluate(query, algorithm=algorithm))
                got = _canon(lazy_engine.evaluate(query, algorithm=algorithm))
                assert got == expected, (query, algorithm)
                cases += 1
    assert cases == 3 * 12 * len(ALGORITHMS)


def test_lazy_matches_eager_on_full_grammar():
    """The full-grammar generator (position()/last(), functions, unions,
    id()): lazy ≡ eager on the five full-XPath algorithms, six when the
    case classifies inside Core XPath."""
    rng = random.Random(SEED + 1)
    for document in _fixed_documents():
        eager_engine = XPathEngine(document)
        lazy_engine = XPathEngine(_lazy_twin(document))
        for _ in range(12):
            query = random_full_query(rng)
            compiled = eager_engine.compile(query)
            names = ALGORITHMS if compiled.is_core_xpath else ALGORITHMS[:-1]
            for algorithm in names:
                expected = _canon(eager_engine.evaluate(query, algorithm=algorithm))
                got = _canon(lazy_engine.evaluate(query, algorithm=algorithm))
                assert got == expected, (query, algorithm)


def test_lazy_matches_eager_under_every_kernel_mode():
    """scan / auto / indexed dispatch all return identical values on the
    lazy twin — the kernels and the Definition-1 fallbacks agree about
    column documents exactly as they do about trees."""
    document = _fixed_documents()[0]
    lazy = _lazy_twin(document)
    eager_engine = XPathEngine(document)
    lazy_engine = XPathEngine(lazy)
    queries = [
        "/descendant::b",
        "/descendant::c[child::b]/child::b",
        "/descendant::b[not(following::c)]",
        "/descendant::*[not(child::*)]/parent::*",
    ]
    for mode in ("scan", "auto", "indexed"):
        with kernel_mode_forced(mode):
            for query in queries:
                expected = _canon(eager_engine.evaluate(query, algorithm="corexpath"))
                got = _canon(lazy_engine.evaluate(query, algorithm="corexpath"))
                assert got == expected, (mode, query)


# ----------------------------------------------------------------------
# lazy ≡ eager through the service layer — share on/off × backends
# ----------------------------------------------------------------------


def test_lazy_matches_eager_through_batch_service_share_on_and_off():
    rng = random.Random(SEED + 2)
    queries = [random_core_query(rng, max_steps=3) for _ in range(8)]
    queries.append("//b")  # a guaranteed-sharing chain with the corpus
    eager_documents = _fixed_documents()
    lazy_documents = [_lazy_twin(document) for document in eager_documents]
    for share in (True, False):
        expected = QueryService().evaluate_many(
            queries, eager_documents, share=share
        )
        got = QueryService().evaluate_many(queries, lazy_documents, share=share)
        assert _canon(got.values) == _canon(expected.values), share


def test_lazy_matches_eager_through_every_scheduler_backend():
    """Serial, thread, and process shard workers all see lazy parents;
    the process backend re-encodes the columns and decodes lazily on the
    worker side (the scheduler's default)."""
    rng = random.Random(SEED + 3)
    queries = [random_core_query(rng, max_steps=3) for _ in range(4)]
    eager_documents = _fixed_documents()[:2]
    lazy_documents = [_lazy_twin(document) for document in eager_documents]
    expected = QueryService().evaluate_many(queries, eager_documents)
    for backend in ("serial", "thread", "process"):
        batch = ShardedExecutor(workers=2, backend=backend).execute(
            queries, lazy_documents
        )
        assert _canon(batch.values) == _canon(expected.values), backend


# ----------------------------------------------------------------------
# Column accessors: strings, ids, statistics, serialization
# ----------------------------------------------------------------------


def test_string_values_ids_and_paths_match_the_tree():
    for document in _fixed_documents():
        lazy = _lazy_twin(document)
        assert len(lazy) == len(document)
        for pre, node in enumerate(document.nodes):
            assert lazy.string_value_of_pre(pre) == node.string_value
            twin = lazy.nodes[pre]
            assert twin.string_value == node.string_value
            assert twin.name == node.name
            assert twin.kind == node.kind
            assert twin.child_index == node.child_index
            assert twin.path() == node.path()
        assert {k: v.pre for k, v in lazy.id_map.items()} == {
            k: v.pre for k, v in document.id_map.items()
        }


def test_duplicate_ids_resolve_first_in_document_order():
    document = decode_snapshot(
        encode_snapshot(
            parse_document('<a id="x"><b id="x"/><c id="y"/><d id="y"/></a>')
        )
    )
    lazy = _lazy_twin(document)
    assert {k: v.pre for k, v in lazy.id_map.items()} == {
        k: v.pre for k, v in document.id_map.items()
    }
    assert lazy.id_map["x"].name == "a"
    assert lazy.id_map["y"].name == "c"


def test_column_statistics_match_the_tree_walk():
    """``document_statistics`` answers from the columns on a lazy
    document — identical to the boxed tree walk, and without
    materializing a single node."""
    for document in _fixed_documents() + [book_catalog(books=3)]:
        lazy = _lazy_twin(document)
        before = lazy.materialized_count()
        assert document_statistics(lazy) == document_statistics(document)
        assert lazy.materialized_count() == before == 0


def test_serialization_and_reencode_are_byte_identical():
    """The eager fallbacks still work end to end: serializing a lazy
    document walks (and boxes) the tree; re-encoding it reproduces the
    exact snapshot blob."""
    for document in _fixed_documents():
        blob = encode_snapshot(document)
        lazy = decode_snapshot(blob, lazy=True)
        assert serialize(lazy) == serialize(document)
        assert encode_snapshot(lazy) == blob


# ----------------------------------------------------------------------
# The no-copy following kernel (satellite regression)
# ----------------------------------------------------------------------


def test_following_axis_suffix_is_a_zero_copy_view():
    """The following-axis kernel returns a memoryview slice of the
    packed partition itself — no ``list()`` copy of the suffix."""
    document = book_catalog(books=6)
    index = node_index(document)
    test = NodeTest("name", "price")
    partition = index.partition(test, "following")
    origin = index.by_tag["title"][0]
    with kernel_mode_forced("auto"):
        out = axis_test_pres(document, "following", [origin], test)
    assert isinstance(out, memoryview)
    assert out.obj is partition.obj  # same backing storage: zero-copy
    assert list(out)  # and the suffix is non-trivial on this workload
