"""Adaptive shard weighting: observed per-shard wall times feed LPT.

The shard planner's node-count proxy is only as good as "cost scales
with size" — position-heavy queries break it. These tests pin the
feedback loop: shard outcomes carry wall times, the scheduler folds them
into a :class:`ShardTimingHistory`, the history turns into per-document
weight predictions, and :func:`plan_shards` balances on those instead of
node counts for repeat batches. Everything must be deterministic given
the same history — re-planning the same corpus with the same
observations yields the same shards.
"""

import asyncio

from repro.service import (
    AsyncQueryService,
    QueryService,
    Scheduler,
    SerialScheduler,
    ShardTimingHistory,
    ShardedExecutor,
    plan_shards,
)
from repro.service.shard import document_weight
from repro.workloads.documents import book_catalog, numbered_line, wide_tree
from repro.xml.parser import parse_document

import pytest


def _documents():
    return [
        book_catalog(books=6),
        wide_tree(width=20),
        parse_document("<a><b>1</b><b>2</b></a>"),
        numbered_line(30),
    ]


# ----------------------------------------------------------------------
# The history itself
# ----------------------------------------------------------------------


def test_observe_shard_apportions_by_node_count():
    small = parse_document("<a><b/></a>")
    large = book_catalog(books=6)
    history = ShardTimingHistory()
    history.observe_shard([small, large], elapsed_seconds=4.0)
    weights = history.predicted_weights([small, large])
    total = document_weight(small) + document_weight(large)
    assert weights[0] == pytest.approx(4.0 * document_weight(small) / total)
    assert weights[1] == pytest.approx(4.0 * document_weight(large) / total)


def test_predictions_none_without_history():
    history = ShardTimingHistory()
    assert history.predicted_weights(_documents()) is None
    assert len(history) == 0


def test_unseen_documents_predicted_from_observed_rate():
    seen = book_catalog(books=6)
    unseen = parse_document("<a><b/><c/></a>")
    history = ShardTimingHistory()
    history.observe(seen, 2.0)
    weights = history.predicted_weights([seen, unseen])
    rate = 2.0 / document_weight(seen)
    assert weights[0] == pytest.approx(2.0)
    assert weights[1] == pytest.approx(rate * document_weight(unseen))


def test_history_smoothing_is_deterministic():
    document = parse_document("<a/>")
    first = ShardTimingHistory(smoothing=0.5)
    second = ShardTimingHistory(smoothing=0.5)
    for h in (first, second):
        h.observe(document, 1.0)
        h.observe(document, 3.0)
    assert first.predicted_weights([document]) == second.predicted_weights(
        [document]
    ) == [2.0]


# ----------------------------------------------------------------------
# plan_shards with explicit weights
# ----------------------------------------------------------------------


def test_explicit_weights_replace_node_count_lpt():
    """A small-but-slow document must be isolated once its observed cost
    says so, where node-count LPT would have grouped it with others."""
    documents = _documents()
    by_nodes = plan_shards(documents, workers=2, strategy="size-balanced")
    # Observed: document 2 (6 nodes) is by far the most expensive.
    weights = [0.1, 0.2, 10.0, 0.3]
    by_time = plan_shards(
        documents, workers=2, strategy="size-balanced", weights=weights
    )
    slow_shard = next(s for s in by_time if 2 in s.document_indices)
    assert slow_shard.document_indices == (2,)  # isolated despite tiny size
    assert by_time != by_nodes
    # Deterministic: same weights, same plan.
    assert by_time == plan_shards(
        documents, workers=2, strategy="size-balanced", weights=weights
    )


def test_round_robin_ignores_weights():
    documents = _documents()
    assert plan_shards(documents, 2, "round-robin", weights=[9, 9, 9, 9]) == (
        plan_shards(documents, 2, "round-robin")
    )


def test_weight_length_mismatch_raises():
    with pytest.raises(ValueError):
        plan_shards(_documents(), 2, "size-balanced", weights=[1.0])


# ----------------------------------------------------------------------
# Scheduler integration
# ----------------------------------------------------------------------


def test_scheduler_prepare_uses_history_weights():
    documents = _documents()
    history = ShardTimingHistory()
    for document, seconds in zip(documents, (0.1, 0.2, 10.0, 0.3)):
        history.observe(document, seconds)
    scheduler = SerialScheduler(
        workers=2, shard_by="size-balanced", history=history
    )
    prepared = scheduler.prepare(["//b"], documents)
    slow_shard = next(s for s in prepared.shards if 2 in s.document_indices)
    assert slow_shard.document_indices == (2,)
    # Weight field now carries predicted seconds, not node counts.
    assert slow_shard.weight == pytest.approx(10.0)
    # Identical history → identical plan (determinism).
    again = SerialScheduler(
        workers=2, shard_by="size-balanced", history=history
    ).prepare(["//b"], documents)
    assert again.shards == prepared.shards


def test_history_is_not_part_of_worker_config():
    scheduler = SerialScheduler(workers=2, history=ShardTimingHistory())
    assert "history" not in scheduler.service_config


def test_shard_outcomes_carry_wall_times_on_every_backend():
    documents = _documents()
    queries = ["//b", "count(//*)"]
    for backend in ("serial", "thread", "process", "async"):
        batch = ShardedExecutor(workers=2, backend=backend).execute(
            queries, documents
        )
        assert batch.shards, backend
        for report in batch.shards:
            assert report["elapsed_seconds"] > 0.0, backend


def test_sharded_batches_feed_the_service_history():
    service = QueryService()
    documents = _documents()
    assert len(service.shard_history) == 0
    first = service.evaluate_many(
        ["//b", "count(//*)"], documents, workers=2, shard_by="size-balanced"
    )
    assert first.workers == 2
    assert len(service.shard_history) == len(documents)
    # The repeat batch plans on predicted seconds: every shard weight is
    # the sum of its documents' predictions.
    predictions = service.shard_history.predicted_weights(documents)
    second = service.evaluate_many(
        ["//b", "count(//*)"], documents, workers=2, shard_by="size-balanced"
    )
    for report in second.shards:
        expected = sum(predictions[i] for i in report["documents"])
        assert report["weight"] == pytest.approx(expected)


def test_streamed_batches_feed_the_service_history():
    service = QueryService()
    async_service = AsyncQueryService(service)
    documents = _documents()
    stream = async_service.stream_many(
        ["//b"], documents, workers=2, shard_by="size-balanced"
    )

    async def drain():
        async for _ in stream:
            pass

    asyncio.run(drain())
    assert len(service.shard_history) == len(documents)
    for report in stream.shards:
        assert report["elapsed_seconds"] > 0.0
