"""Tests for unparse (AST → string) and the tree dump."""

import pytest

from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.xpath.unparse import dump_tree, unparse


def round_trip(source):
    """unparse must re-parse to an equivalent tree (checked via a second
    unparse fixpoint)."""
    first = unparse(parse_xpath(source))
    second = unparse(parse_xpath(first))
    assert first == second
    return first


@pytest.mark.parametrize(
    "source,expected",
    [
        ("child::a", "child::a"),
        ("//b", "/descendant-or-self::node()/child::b"),
        (".", "self::node()"),
        ("..", "parent::node()"),
        ("@x", "attribute::x"),
        ("a[1]", "child::a[1]"),
        ("1+2*3", "1 + 2 * 3"),
        ("(1+2)*3", "(1 + 2) * 3"),
        ("1 - (2 - 3)", "1 - (2 - 3)"),
        ("-a", "-child::a"),
        ("a|b", "child::a | child::b"),
        ("'it'", "'it'"),
        ('"don\'t"', '"don\'t"'),
        ("f:g(a)", "f:g(child::a)"),
        ("processing-instruction('x')", "child::processing-instruction('x')"),
        ("a and b or c", "child::a and child::b or child::c"),
        ("a and (b or c)", "child::a and (child::b or child::c)"),
    ],
)
def test_unparse_forms(source, expected):
    got = unparse(parse_xpath(source))
    assert got == expected


@pytest.mark.parametrize(
    "source",
    [
        "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
        "a[b = 1][position() != last()]/c",
        "count(//a) + sum(//b) * 2",
        "(a | b)[1]/c",
        "id('x')/a[@k = 'v']",
        "not(a) and true()",
        "substring('12345', 2, 3)",
        "a[.. = 1]",
    ],
)
def test_unparse_round_trip(source):
    round_trip(source)


def test_dump_tree_contains_annotations():
    expr = normalize(parse_xpath("a[position() = 1]"))
    compute_relevance(expr)
    dump = dump_tree(expr)
    assert "nset" in dump
    assert "Relev={cn}" in dump
    assert "Relev={cp}" in dump
    assert "position()" in dump
    # One line per parse-tree node (path, step, predicate, position, 1).
    assert len(dump.splitlines()) == 5


def test_dump_tree_marks_empty_relevance():
    expr = normalize(parse_xpath("1"))
    compute_relevance(expr)
    assert "Relev=∅" in dump_tree(expr)
