"""Tests for the core function library (W3C §4 / Figure 1 F rows)."""

import math

import pytest

from repro.errors import UnknownFunctionError, WrongArityError
from repro.functions.library import apply_function, signature_for
from repro.xml.parser import parse_document


@pytest.fixture(scope="module")
def doc():
    return parse_document(
        '<r id="r" xml:lang="en">'
        '<a id="1">10</a>'
        '<a id="2">20</a>'
        '<b id="3">1 r</b>'
        '<c id="4" xml:lang="de-AT"><d id="5"/></c>'
        "</r>"
    )


def nset(doc, *keys):
    return {doc.element_by_id(k) for k in keys}


def call(doc, name, *args, context_node=None):
    return apply_function(doc, name, list(args), context_node)


# --- signatures -----------------------------------------------------------

def test_signature_lookup_and_unknown():
    assert signature_for("count").returns == "num"
    with pytest.raises(UnknownFunctionError):
        signature_for("frobnicate")


def test_arity_checking():
    signature_for("count").check_arity(1)
    with pytest.raises(WrongArityError):
        signature_for("count").check_arity(0)
    with pytest.raises(WrongArityError):
        signature_for("count").check_arity(2)
    signature_for("concat").check_arity(5)  # variadic
    with pytest.raises(WrongArityError):
        signature_for("concat").check_arity(1)
    signature_for("substring").check_arity(2)  # optional third
    signature_for("substring").check_arity(3)
    signature_for("string").check_arity(0)  # defaults to context


# --- node-set functions ------------------------------------------------------

def test_count(doc):
    assert call(doc, "count", nset(doc, "1", "2")) == 2.0
    assert call(doc, "count", set()) == 0.0


def test_sum(doc):
    assert call(doc, "sum", nset(doc, "1", "2")) == 30.0
    assert call(doc, "sum", set()) == 0.0
    assert math.isnan(call(doc, "sum", nset(doc, "1", "3")))  # "1 r" -> NaN


def test_id_with_string(doc):
    assert call(doc, "id", "1 4 nothing") == nset(doc, "1", "4")


def test_id_with_node_set(doc):
    # id(nset): union of deref over members' string values ("1 r").
    assert call(doc, "id", nset(doc, "3")) == nset(doc, "1", "r")


def test_name_functions(doc):
    assert call(doc, "name", nset(doc, "1")) == "a"
    assert call(doc, "local-name", nset(doc, "1", "2")) == "a"
    assert call(doc, "name", set()) == ""
    assert call(doc, "namespace-uri", nset(doc, "1")) == ""


def test_local_name_strips_prefix():
    doc = parse_document("<ns:x/>")
    root = doc.root_element
    assert call(doc, "name", {root}) == "ns:x"
    assert call(doc, "local-name", {root}) == "x"


# --- string functions ---------------------------------------------------------

def test_string_conversion(doc):
    assert call(doc, "string", 4.5) == "4.5"
    assert call(doc, "string", nset(doc, "1")) == "10"
    assert call(doc, "string", True) == "true"


def test_concat(doc):
    assert call(doc, "concat", "a", "b", "c") == "abc"


def test_starts_with_contains(doc):
    assert call(doc, "starts-with", "hello", "he") is True
    assert call(doc, "starts-with", "hello", "lo") is False
    assert call(doc, "contains", "hello", "ell") is True
    assert call(doc, "contains", "hello", "") is True


def test_substring_before_after(doc):
    assert call(doc, "substring-before", "1999/04/01", "/") == "1999"
    assert call(doc, "substring-after", "1999/04/01", "/") == "04/01"
    assert call(doc, "substring-before", "abc", "x") == ""
    assert call(doc, "substring-after", "abc", "x") == ""


def test_substring_spec_examples(doc):
    # The infamous W3C §4.2 examples.
    assert call(doc, "substring", "12345", 2.0, 3.0) == "234"
    assert call(doc, "substring", "12345", 2.0) == "2345"
    assert call(doc, "substring", "12345", 1.5, 2.6) == "234"
    assert call(doc, "substring", "12345", 0.0, 3.0) == "12"
    assert call(doc, "substring", "12345", float("nan"), 3.0) == ""
    assert call(doc, "substring", "12345", 1.0, float("nan")) == ""
    assert call(doc, "substring", "12345", -42.0, float("inf")) == "12345"
    assert call(doc, "substring", "12345", float("-inf"), float("inf")) == ""


def test_string_length(doc):
    assert call(doc, "string-length", "hello") == 5.0
    assert call(doc, "string-length", "") == 0.0


def test_normalize_space(doc):
    assert call(doc, "normalize-space", "  a \t b\n c ") == "a b c"


def test_translate(doc):
    assert call(doc, "translate", "bar", "abc", "ABC") == "BAr"
    assert call(doc, "translate", "--aaa--", "abc-", "ABC") == "AAA"
    # First occurrence in the from-string wins.
    assert call(doc, "translate", "aaa", "aa", "xy") == "xxx"


# --- boolean functions -----------------------------------------------------------

def test_boolean_and_not(doc):
    assert call(doc, "boolean", nset(doc, "1")) is True
    assert call(doc, "boolean", 0.0) is False
    assert call(doc, "not", True) is False
    assert call(doc, "true") is True
    assert call(doc, "false") is False


def test_lang(doc):
    d5 = doc.element_by_id("5")
    # Nearest xml:lang is de-AT (on c[4]).
    assert call(doc, "lang", "de", context_node=d5) is True
    assert call(doc, "lang", "de-AT", context_node=d5) is True
    assert call(doc, "lang", "en", context_node=d5) is False
    a1 = doc.element_by_id("1")
    assert call(doc, "lang", "EN", context_node=a1) is True  # case-insensitive
    assert call(doc, "lang", "fr", context_node=a1) is False
    assert call(doc, "lang", "e", context_node=a1) is False  # not a prefix match


# --- number functions -------------------------------------------------------------

def test_number_conversion(doc):
    assert call(doc, "number", "12") == 12.0
    assert call(doc, "number", nset(doc, "2")) == 20.0
    assert call(doc, "number", True) == 1.0


def test_floor_ceiling_round(doc):
    assert call(doc, "floor", 2.6) == 2.0
    assert call(doc, "ceiling", 2.2) == 3.0
    assert call(doc, "round", 2.5) == 3.0
    assert call(doc, "round", -2.5) == -2.0


def test_position_last_rejected_as_value_functions(doc):
    from repro.errors import UnknownFunctionError as UFE

    with pytest.raises(Exception):
        call(doc, "position")


def test_apply_unknown_function(doc):
    with pytest.raises(UnknownFunctionError):
        call(doc, "nope")
