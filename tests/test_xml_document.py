"""Tests for the document data model: numbering, string values, ids."""

import pytest

from repro.errors import DocumentFrozenError, DocumentNotFinalizedError
from repro.xml.builder import DocumentBuilder
from repro.xml.document import Document, NodeKind
from repro.xml.parser import parse_document


def test_preorder_numbering_is_positional():
    doc = parse_document("<a><b/><c><d/></c></a>")
    for index, node in enumerate(doc.nodes):
        assert node.pre == index
    names = [n.name for n in doc.nodes if n.is_element]
    assert names == ["a", "b", "c", "d"]


def test_attributes_numbered_after_element_before_children():
    doc = parse_document('<a x="1"><b y="2"/></a>')
    a = doc.root_element
    x = a.attributes[0]
    b = a.children[0]
    assert a.pre < x.pre < b.pre < b.attributes[0].pre


def test_subtree_size_counts_self_attributes_descendants():
    doc = parse_document('<a x="1"><b/><c y="2">t</c></a>')
    a = doc.root_element
    # a + @x + b + c + @y + text = 6
    assert a.size == 6
    assert doc.root.size == 7


def test_interval_ancestor_test():
    doc = parse_document("<a><b><c/></b><d/></a>")
    a = doc.root_element
    b, d = a.children
    c = b.children[0]
    assert a.is_ancestor_of(c)
    assert b.is_ancestor_of(c)
    assert not d.is_ancestor_of(c)
    assert not c.is_ancestor_of(c)
    assert doc.root.is_ancestor_of(d)


def test_string_value_of_element_concatenates_descendant_text():
    doc = parse_document("<a>x<b>y<!--no--><c>z</c></b>w</a>")
    assert doc.root_element.string_value == "xyzw"
    assert doc.root.string_value == "xyzw"


def test_string_value_of_leaf_kinds():
    doc = parse_document('<a k="v">t<!--c--><?p d?></a>')
    a = doc.root_element
    assert a.attributes[0].string_value == "v"
    text, comment, pi = a.children
    assert text.string_value == "t"
    assert comment.string_value == "c"
    assert pi.string_value == "d"


def test_id_map_and_deref():
    doc = parse_document('<a id="r"><b id="x"/><b id="y"/></a>')
    assert doc.element_by_id("x").pre < doc.element_by_id("y").pre
    assert doc.deref_ids("y r missing") == {doc.root_element, doc.element_by_id("y")}


def test_duplicate_ids_first_wins():
    doc = parse_document('<a><b id="k">first</b><c id="k">second</c></a>')
    assert doc.element_by_id("k").name == "b"


def test_document_order_helpers():
    doc = parse_document("<a><b/><c/></a>")
    a = doc.root_element
    b, c = a.children
    assert doc.in_document_order({c, b, a}) == [a, b, c]
    assert doc.first_in_document_order({c, b}) is b
    assert doc.first_in_document_order([]) is None


def test_ancestors_iteration_order():
    doc = parse_document("<a><b><c/></b></a>")
    c = doc.root_element.children[0].children[0]
    assert [n.name for n in c.ancestors()] == ["b", "a", None]


def test_path_rendering():
    doc = parse_document("<a><b/><b><c x='1'/></b></a>")
    second_b = doc.root_element.children[1]
    c = second_b.children[0]
    assert second_b.path() == "/a[1]/b[2]"
    assert c.path() == "/a[1]/b[2]/c[1]"
    assert c.attributes[0].path() == "/a[1]/b[2]/c[1]/@x"


def test_frozen_document_rejects_mutation():
    doc = parse_document("<a/>")
    with pytest.raises(DocumentFrozenError):
        doc.new_node(NodeKind.ELEMENT, name="x")


def test_unfinalized_document_rejects_queries():
    doc = Document()
    with pytest.raises(DocumentNotFinalizedError):
        len(doc)


def test_finalize_is_idempotent():
    builder = DocumentBuilder()
    builder.leaf("a")
    doc = builder.build()
    assert doc.finalize() is doc


def test_elements_listing():
    doc = parse_document("<a>t<b/><!--c--><d/></a>")
    assert [e.name for e in doc.elements()] == ["a", "b", "d"]


def test_xml_id_property():
    doc = parse_document('<a id="1"><b/></a>')
    assert doc.root_element.xml_id == "1"
    assert doc.root_element.children[0].xml_id is None
    assert doc.root.xml_id is None


def test_attribute_lookup():
    doc = parse_document('<a x="1" y="2"/>')
    a = doc.root_element
    assert a.attribute("y").value == "2"
    assert a.attribute("z") is None
    assert a.attribute_value("z", "dflt") == "dflt"
