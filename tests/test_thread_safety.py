"""Concurrency hammer: one shared QueryService under many threads.

PR 3's thread-safety contract: :class:`PlanCache`, :class:`CacheStats`,
and the :class:`QueryService` session/memo maps are lock-protected, so a
single service driven from many threads (the thread scheduler's seeding
path, the async front end's offload pool, or plain user threads) keeps
*exact* counters — every lookup counted exactly once, every capacity
overflow counted as an eviction, nothing lost to torn ``+=`` updates —
and returns correct values throughout.

The assertions are deliberately exact (``==``, not ``>=``): before the
locks, losing increments under an 8-thread hammer was the overwhelmingly
likely outcome, so equality is the regression signal.
"""

import threading

from repro.engine import XPathEngine
from repro.service import PlanCache, QueryService
from repro.stats import CacheStats
from repro.workloads.documents import book_catalog, running_example_document, wide_tree
from repro.xml.parser import parse_document

THREADS = 8
ROUNDS = 60


def _hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on N threads through a start barrier
    (maximizing interleaving) and re-raise the first worker error."""
    barrier = threading.Barrier(threads)
    errors = []

    def body(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as error:  # pragma: no cover - only on regression
            errors.append(error)

    pool = [threading.Thread(target=body, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


def test_cache_stats_counters_are_exact_under_contention():
    stats = CacheStats(name="hammer")

    def worker(_):
        for _ in range(1000):
            stats.hit()
            stats.miss()
            stats.eviction()

    _hammer(worker)
    assert stats.hits == THREADS * 1000
    assert stats.misses == THREADS * 1000
    assert stats.evictions == THREADS * 1000
    assert stats.lookups == 2 * THREADS * 1000


def test_plan_cache_accounting_is_exact_under_contention():
    """Interleaved get_or_create over more keys than capacity: every
    lookup is one hit or one miss, every insert past capacity evicts,
    and the cache never exceeds capacity — all exactly."""
    cache = PlanCache(capacity=5)
    keys = [f"q{i}" for i in range(12)]

    def worker(index):
        for round_number in range(ROUNDS):
            key = keys[(index + round_number) % len(keys)]
            value = cache.get_or_create(key, lambda k=key: ("plan", k))
            assert value == ("plan", key)

    _hammer(worker)
    stats = cache.stats
    total_lookups = THREADS * ROUNDS
    assert stats.hits + stats.misses == total_lookups
    # Every miss inserted a brand-new key (the factory runs under the
    # lock, so racing callers of one key produce one miss, then hits);
    # keys only leave via counted evictions.
    assert stats.misses - stats.evictions == len(cache)
    assert len(cache) == cache.capacity


def test_shared_query_service_is_exact_and_correct_under_8_threads():
    """The satellite's headline scenario: one QueryService, 8 concurrent
    drivers, a plan cache small enough to thrash. Values stay correct and
    both cache layers' counters add up exactly."""
    documents = [
        running_example_document(),
        book_catalog(books=3),
        wide_tree(width=10),
        parse_document("<a><b>1</b><b>2</b><c>3</c></a>"),
    ]
    queries = [
        "//b",
        "count(//*)",
        "/descendant::*[position() = last()]",
        "//c",
        "/child::*/child::*",
        "//b[1]",
    ]
    expected = {
        (q, id(d)): XPathEngine(d).evaluate(q) for q in queries for d in documents
    }
    # plan_capacity=4 < 6 distinct queries: constant eviction pressure.
    service = QueryService(plan_capacity=4)

    def worker(index):
        for round_number in range(ROUNDS):
            query = queries[(index + round_number) % len(queries)]
            document = documents[(index * 3 + round_number) % len(documents)]
            assert service.evaluate(query, document) == expected[(query, id(document))]

    _hammer(worker)
    evaluations = THREADS * ROUNDS
    plan = service.plans.stats
    # Exactly one plan-cache lookup per evaluate() call, none lost.
    assert plan.hits + plan.misses == evaluations
    # Keys leave the plan cache only via counted evictions.
    assert plan.misses - plan.evictions == len(service.plans)
    assert len(service.plans) <= 4
    # Exactly one result-memo lookup per evaluate() call, aggregated
    # across live and retired sessions, none lost.
    result = service.result_cache_stats()
    assert result["hits"] + result["misses"] == evaluations
    assert service.cache_stats()["sessions"] == len(documents)


def test_specializer_memo_counters_are_exact_under_contention():
    """The two-stage split's new cache layer under the same hammer: one
    specializer lookup per ``auto`` evaluation, none lost, misses equal
    the distinct (plan, profile) pairs, and values stay correct."""
    documents = [
        running_example_document(),
        book_catalog(books=3),
        wide_tree(width=10),
        parse_document("<a><b>1</b><b>2</b><c>3</c></a>"),
    ]
    queries = ["//b", "count(//*)", "/descendant::*[position() = last()]", "//c"]
    expected = {
        (q, id(d)): XPathEngine(d).evaluate(q) for q in queries for d in documents
    }
    service = QueryService(plan_capacity=2)  # plan thrash: recompiled plans
    assert service.specializer is not None   # must hit the same memo keys

    def worker(index):
        for round_number in range(ROUNDS):
            # Stride chosen to visit every (query, document) pair.
            query = queries[round_number % len(queries)]
            document = documents[(round_number // len(queries) + index) % len(documents)]
            assert service.evaluate(query, document) == expected[(query, id(document))]

    _hammer(worker)
    evaluations = THREADS * ROUNDS
    spec = service.specializer.stats
    result = service.result_cache_stats()
    assert result["hits"] + result["misses"] == evaluations
    # Result-memo hits skip stage-2 entirely (the hot path takes no
    # specializer lock); exactly one specializer lookup per result-memo
    # miss, none torn. Racing threads that miss the same result key both
    # resolve — the equality holds whatever the race count.
    assert spec.hits + spec.misses == result["misses"]
    # Misses are the distinct (plan, profile) pairs — plan-cache eviction
    # and recompilation must not mint new memo keys (stable cache_key).
    assert spec.misses == len(queries) * len(documents)
    assert len(service.specializer) == spec.misses
    assert spec.evictions == 0


def test_shared_service_session_eviction_loses_no_counters():
    """Session-capacity thrash from many threads: retired sessions fold
    their memo counters into the aggregate, so totals stay exact even
    while sessions are evicted and rebuilt concurrently."""
    documents = [parse_document(f"<a><b>{i}</b></a>") for i in range(6)]
    service = QueryService(session_capacity=2)

    def worker(index):
        for round_number in range(ROUNDS):
            document = documents[(index + round_number) % len(documents)]
            assert isinstance(service.evaluate("//b", document), list)

    _hammer(worker)
    evaluations = THREADS * ROUNDS
    result = service.result_cache_stats()
    assert result["hits"] + result["misses"] == evaluations
    assert len(service._sessions) <= 2


def test_concurrent_drivers_through_the_async_front_end():
    """The async facade's offload pool is just another set of concurrent
    drivers; the shared service's counters must stay exact through it."""
    import asyncio

    from repro.service import AsyncQueryService

    documents = [parse_document(f"<a><b>{i}</b></a>") for i in range(4)]
    service = AsyncQueryService(QueryService(plan_capacity=2))
    queries = ["//b", "count(//*)", "//b[. > 1]"]

    async def main():
        jobs = [
            service.evaluate(queries[i % len(queries)], documents[i % len(documents)])
            for i in range(48)
        ]
        return await asyncio.gather(*jobs)

    values = asyncio.run(main())
    assert len(values) == 48
    plan = service.service.plans.stats
    assert plan.hits + plan.misses == 48
    assert plan.misses - plan.evictions == len(service.service.plans)


def test_eight_task_cancellation_hammer_leaves_a_quiet_loop():
    """PR 10's cancellation contract under contention: 8 concurrent
    batch streams, each broken out of at a different point (including
    before the first item), must leave the event loop with zero pending
    tasks and per-stream stats that reconcile exactly with the shards
    that actually completed — cancellation loses no counters and leaks
    no work."""
    import asyncio

    from repro.service import AsyncQueryService

    documents = [parse_document(f"<r><a><b>{i}</b></a><c/></r>") for i in range(6)]
    queries = ["//b", "count(//*)", "/r/c"]
    service = AsyncQueryService()

    async def drive(index):
        stream = service.stream_many(queries, documents, workers=3)
        taken = 0
        async for _ in stream:
            taken += 1
            if taken > index:  # task 0 breaks immediately, task 7 latest
                break
        await stream.aclose()
        return stream

    async def main():
        streams = await asyncio.gather(*(drive(i) for i in range(THREADS)))
        leftovers = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task() and not task.done()
        ]
        return streams, leftovers

    for _ in range(3):
        streams, leftovers = asyncio.run(main())
        assert leftovers == []
        for stream in streams:
            # Exact reconciliation: cache traffic equals one lookup per
            # query for each shard whose outcome was absorbed.
            snapshot = stream.plan_stats
            assert snapshot["hits"] + snapshot["misses"] == len(queries) * len(
                stream.shards
            )
            for key in ("hits", "misses", "evictions"):
                assert snapshot[key] == sum(
                    report["plan_stats"][key] for report in stream.shards
                )


def test_node_index_is_built_exactly_once_under_contention():
    """PR 5's new process-wide cache under the hammer: 8 threads racing
    to index one shared document get the *same* instance, the build
    counter moves by exactly one (the build runs under the cache lock),
    and every fused dispatch counts exactly one outcome."""
    from repro import stats
    from repro.axes.axes import fused_axis_set
    from repro.workloads.documents import book_catalog
    from repro.xml.index import node_index
    from repro.xpath.ast import NodeTest

    document = book_catalog(books=6)  # fresh document: not yet indexed
    before = stats.axis_kernel_stats.snapshot()
    instances = []
    calls_per_thread = 50
    test = NodeTest("name", "price")

    def worker(_):
        index = node_index(document)
        instances.append(index)
        for _ in range(calls_per_thread):
            result = fused_axis_set(document, "descendant", [document.root], test)
            assert len(result) == 6  # one price element per book

    _hammer(worker)
    after = stats.axis_kernel_stats.snapshot()
    assert len(instances) == THREADS
    assert all(index is instances[0] for index in instances)
    # Exactly one build, ever — racing first callers serialized on the
    # cache lock, and the per-thread node_index() calls all hit.
    assert after["index_builds"] - before["index_builds"] == 1
    # Every dispatch counted exactly one outcome, none torn.
    dispatched = THREADS * calls_per_thread
    fused_delta = after["fused_hits"] - before["fused_hits"]
    fallback_delta = after["fallback_scans"] - before["fallback_scans"]
    assert fused_delta + fallback_delta == dispatched
    # A selective name test on an indexed axis always takes the kernel.
    assert fused_delta == dispatched


def test_lazy_document_materializes_each_pre_exactly_once_under_contention():
    """PR 8's materialization lock under the hammer: 8 threads racing to
    box every node of one shared lazy document get the *same* Node
    instance per pre, and the global counter moves by exactly |dom| —
    no pre boxed twice, none lost to torn updates — while concurrent
    query evaluation over the same document stays correct."""
    from repro import stats
    from repro.engine import XPathEngine
    from repro.xml.snapshot import decode_snapshot, encode_snapshot

    lazy = decode_snapshot(encode_snapshot(book_catalog(books=4)), lazy=True)
    total = len(lazy)
    expected_prices = [
        node.pre for node in XPathEngine(book_catalog(books=4)).evaluate(
            "/descendant::price"
        )
    ]
    before = stats.axis_kernel_stats.snapshot()
    boxed = [None] * THREADS

    def worker(index):
        engine = XPathEngine(lazy)
        # Interleave whole-document materialization with query
        # evaluation that materializes its own output nodes.
        got = engine.evaluate("/descendant::price")
        assert [node.pre for node in got] == expected_prices
        start = index % total  # staggered starts: maximal overlap
        boxed[index] = [lazy.nodes[(start + pre) % total] for pre in range(total)]

    _hammer(worker)
    after = stats.axis_kernel_stats.snapshot()
    assert lazy.materialized_count() == total
    # Exactly one materialization per pre across all 8 threads.
    assert after["nodes_materialized"] - before["nodes_materialized"] == total
    first = sorted(boxed[0], key=lambda node: node.pre)
    for other in boxed[1:]:
        ordered = sorted(other, key=lambda node: node.pre)
        assert all(a is b for a, b in zip(first, ordered))


def test_vector_program_counters_are_exact_under_contention():
    """PR 9's vector tier under the hammer: 8 threads evaluating the
    same compiled sweep in forced ``vector`` mode over one shared
    document tick ``vector_program_runs``/``vector_ops`` by exactly
    ``threads x rounds x per-evaluation shape`` — the counters ride the
    same locked :class:`repro.stats.KernelStats` as the scalar dispatch
    counters, so equality is the torn-update regression signal — while
    every thread reads identical bytes."""
    from repro import stats
    from repro.axes import kernel_mode_forced

    document = book_catalog(books=20)
    engine = XPathEngine(document)
    compiled = engine.compile("/descendant::*[child::*]/child::node()")
    rounds = 30
    with kernel_mode_forced("vector"):
        expected = engine.evaluate(compiled, algorithm="corexpath")
        probe = stats.axis_kernel_stats.snapshot()
        engine.evaluate(compiled, algorithm="corexpath")
        after_probe = stats.axis_kernel_stats.snapshot()
        runs_per_eval = (
            after_probe["vector_program_runs"] - probe["vector_program_runs"]
        )
        ops_per_eval = after_probe["vector_ops"] - probe["vector_ops"]
        assert runs_per_eval == 2  # forward sweep + one predicate program
        assert ops_per_eval == 4  # two forward ops + filter op + inverse op

        before = stats.axis_kernel_stats.snapshot()

        def worker(_):
            for _ in range(rounds):
                assert engine.evaluate(compiled, algorithm="corexpath") == expected

        _hammer(worker)
        after = stats.axis_kernel_stats.snapshot()
    evaluations = THREADS * rounds
    assert (
        after["vector_program_runs"] - before["vector_program_runs"]
        == evaluations * runs_per_eval
    )
    assert after["vector_ops"] - before["vector_ops"] == evaluations * ops_per_eval


def test_plan_cache_iteration_is_safe_during_mutation():
    """keys()/values() hand out point-in-time copies, so a monitoring
    thread can walk the cache while drivers mutate it."""
    cache = PlanCache(capacity=8)
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            for _ in cache.values():
                pass
            for _ in cache.keys():
                pass

    monitor = threading.Thread(target=reader)
    monitor.start()
    try:
        for i in range(2000):
            cache.put(i, i)
    finally:
        stop.set()
        monitor.join()
    assert len(cache) == 8
