"""Smoke tests: every shipped example must run end-to-end.

Examples are documentation that executes; these tests keep them honest
(run in-process, stdout captured, assertions inside the examples fire)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name, argv=()):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    _run_example("quickstart")
    out = capsys.readouterr().out
    assert "All titles" in out
    assert "optmincontext" in out


def test_paper_walkthrough_runs(capsys):
    _run_example("paper_walkthrough")
    out = capsys.readouterr().out
    assert "matches the paper" in out
    assert "{x11, x12, x13, x14, x22}" in out
    assert "table(N5" in out


def test_book_catalog_runs(capsys):
    _run_example("book_catalog", argv=["5"])
    out = capsys.readouterr().out
    assert "all agree ✓" in out


def test_fragment_advisor_runs(capsys):
    _run_example("fragment_advisor")
    out = capsys.readouterr().out
    assert "Core XPath" in out
    assert "Restriction" in out


def test_document_store_service_runs(capsys, tmp_path):
    _run_example("document_store_service", argv=[str(tmp_path / "s.json")])
    out = capsys.readouterr().out
    assert "ingested" in out
    assert "['13', '14', '21', '22', '23', '24']" in out
